#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace netent::sim {

namespace {

/// Queue-level tallies shared by every EventQueue in the process (there is
/// one live engine per simulation run; the counts are deterministic for a
/// deterministic schedule, so the drill golden tests may compare them).
struct QueueMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& scheduled = reg.counter("sim.events.scheduled");
  obs::Counter& executed = reg.counter("sim.events.executed");
  obs::Counter& cancelled = reg.counter("sim.events.cancelled");
};

QueueMetrics& metrics() {
  static QueueMetrics instance;
  return instance;
}

}  // namespace

EventQueue::EventId EventQueue::schedule(double when, EventStratum stratum, Action action) {
  NETENT_EXPECTS(when >= now_);
  NETENT_EXPECTS(action != nullptr);
  const EventId id = next_sequence_++;
  events_.push(Event{when, stratum, id, std::move(action)});
  live_.insert(id);
  metrics().scheduled.add();
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only a still-pending event can be cancelled; executed / already-cancelled
  // / never-issued handles are safely ignored.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  ++cancelled_total_;
  metrics().cancelled.add();
  return true;
}

void EventQueue::run_until(double horizon) {
  NETENT_EXPECTS(horizon >= now_);
  while (!events_.empty() && events_.top().when <= horizon) {
    // Copy out before pop: the action may schedule new events.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    if (cancelled_.erase(event.sequence) != 0) continue;  // discard unexecuted
    live_.erase(event.sequence);
    now_ = event.when;
    ++executed_;
    metrics().executed.add();
    event.action();
  }
  // The clock always lands on the horizon, even when later events remain:
  // back-to-back windows must observe consistent time.
  now_ = horizon;
}

PeriodicTimer::PeriodicTimer(EventQueue& queue, double period_seconds, EventStratum stratum,
                             EventQueue::Action action)
    : queue_(queue), period_(period_seconds), stratum_(stratum), action_(std::move(action)) {
  NETENT_EXPECTS(period_ > 0.0);
  NETENT_EXPECTS(action_ != nullptr);
}

void PeriodicTimer::start_at(double first_fire_seconds) {
  stop();
  active_ = true;
  base_ = first_fire_seconds;
  ticks_ = 0;
  arm();
}

void PeriodicTimer::stop() {
  active_ = false;
  if (pending_ == EventQueue::kInvalidEvent) return;
  queue_.cancel(pending_);
  pending_ = EventQueue::kInvalidEvent;
}

void PeriodicTimer::arm() {
  // Multiplication, not accumulation: base + n * period keeps timestamps
  // bit-exact (5.0-second periods never drift), matching the lockstep
  // driver's `step * tick_seconds` times.
  pending_ = queue_.schedule(base_ + static_cast<double>(ticks_) * period_, stratum_,
                             [this] { fire(); });
}

void PeriodicTimer::fire() {
  pending_ = EventQueue::kInvalidEvent;
  ++ticks_;
  ++fires_;
  action_();
  // The action may have stopped the timer (active_ now false) or restarted
  // it (pending_ now set); re-arm only when it left this occurrence alone.
  if (active_ && pending_ == EventQueue::kInvalidEvent) arm();
}

}  // namespace netent::sim
