#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace netent::sim {

void EventQueue::schedule(double when, Action action) {
  NETENT_EXPECTS(when >= now_);
  NETENT_EXPECTS(action != nullptr);
  events_.push(Event{when, next_sequence_++, std::move(action)});
}

void EventQueue::run_until(double horizon) {
  NETENT_EXPECTS(horizon >= now_);
  while (!events_.empty() && events_.top().when <= horizon) {
    // Copy out before pop: the action may schedule new events.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.when;
    event.action();
  }
  if (events_.empty() || events_.top().when > horizon) now_ = horizon;
}

}  // namespace netent::sim
