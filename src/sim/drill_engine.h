// The event-driven drill engine: the §6 enforcement drill re-architected
// onto the sim::EventQueue spine.
//
// What is an event:
//  * the world sweep (kWorldStratum, every tick_seconds) — traffic
//    classification, the ACL stage, the bottleneck port, transport
//    adaptation, the application model, connection pools, and the recorded
//    DrillTick. Per-host work stays batched inside this one event (and
//    fanned out over the thread pool), so the event layer adds O(1) queue
//    operations per host per period, not per flow;
//  * per-agent publish and metering timers (kAgentStratum) — each HostAgent
//    owns two independent PeriodicTimers. With phase_jitter_seconds == 0
//    they all fire in phase with the sweep and the engine reproduces the
//    historical lockstep tick series bit-for-bit; with jitter > 0 each
//    agent's phases are seed-derived uniform offsets and the control plane
//    runs desynchronized, the way a real fleet does;
//  * rate-store propagation (kDeliveryStratum) — a publish schedules a
//    delivery event store_visibility_delay_seconds later, so the delay is
//    real propagation rather than a lookback;
//  * control changes and faults (kControlStratum) — the entitlement cut,
//    ACL stage starts, and DrillFault injections are scheduled events that
//    land before the same-timestamp sweep.
//
// Bit-compat argument (phase_jitter == 0): the lockstep loop ran agents
// between transport adaptation and the application model; agents only
// mutate the classifier (read next tick), the meter, and the store (read at
// the next metering), so moving them after the full sweep at the same
// timestamp changes no recorded value. Publish/metering interleaving per
// host matches the old HostAgent::tick order through the stratum FIFO, and
// the EventRateStore's kExactOrdered mode sums hosts in the same ascending
// order as the lookback store, so aggregates are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/drill.h"

namespace netent::sim {

/// Event-layer accounting for one engine run (the bench's events/sec
/// throughput section reads these).
struct DrillEngineStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t ticks_recorded = 0;
};

class DrillEngine {
 public:
  DrillEngine(DrillConfig config, Rng rng);

  /// Runs the whole drill; one DrillTick per world sweep.
  [[nodiscard]] std::vector<DrillTick> run();

  /// Valid after run().
  [[nodiscard]] const DrillEngineStats& stats() const { return stats_; }

  [[nodiscard]] const DrillConfig& config() const { return config_; }

 private:
  DrillConfig config_;
  Rng rng_;
  DrillEngineStats stats_;
};

}  // namespace netent::sim
