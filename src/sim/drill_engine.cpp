#include "sim/drill_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "enforce/agent.h"
#include "enforce/bpf.h"
#include "enforce/dscp.h"
#include "enforce/meter.h"
#include "enforce/ratestore.h"
#include "enforce/switchport.h"
#include "obs/metrics.h"
#include "sim/connections.h"
#include "sim/event_queue.h"

namespace netent::sim {

namespace {

using namespace netent::enforce;

constexpr NpgId kColdstorage{0};
constexpr double kEps = 1e-9;

/// Drill-wide tallies. flows_classified / flows_marked are bumped inside the
/// per-host fan-out (integer adds on sharded counters merge to the same
/// totals for every thread count); the volume counters are accumulated in
/// the serial reduction as milli-gbit of traffic (rate x tick, rounded).
struct DrillMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& runs = reg.counter("sim.drill.runs");
  obs::Counter& ticks = reg.counter("sim.drill.ticks");
  obs::Counter& flows_classified = reg.counter("sim.drill.flows_classified");
  obs::Counter& flows_marked = reg.counter("sim.drill.flows_marked");
  obs::Counter& conform_sent_mgbit = reg.counter("sim.drill.conform_sent_mgbit");
  obs::Counter& nonconf_sent_mgbit = reg.counter("sim.drill.nonconf_sent_mgbit");
  obs::Counter& acl_dropped_mgbit = reg.counter("sim.drill.acl_dropped_mgbit");
  obs::Counter& port_conf_dropped_mgbit = reg.counter("sim.drill.port_conf_dropped_mgbit");
  obs::Counter& port_nonconf_dropped_mgbit = reg.counter("sim.drill.port_nonconf_dropped_mgbit");
};

DrillMetrics& drill_metrics() {
  static DrillMetrics instance;
  return instance;
}

/// Fault-injection tallies (sim.faults.*), one per DrillFault kind applied.
struct FaultMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& agent_crashes = reg.counter("sim.faults.agent_crashes");
  obs::Counter& agent_restarts = reg.counter("sim.faults.agent_restarts");
  obs::Counter& store_partitions = reg.counter("sim.faults.store_partitions");
  obs::Counter& store_heals = reg.counter("sim.faults.store_heals");
  obs::Counter& host_downs = reg.counter("sim.faults.host_downs");
  obs::Counter& host_ups = reg.counter("sim.faults.host_ups");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics instance;
  return instance;
}

std::uint64_t mgbit(double gbps, double seconds) {
  return static_cast<std::uint64_t>(std::llround(gbps * seconds * 1e3));
}

/// Latency multiplier of a lossy path: retries and timeouts inflate service
/// time sharply as loss grows (loss in [0, 1)).
double lossy_latency_factor(double loss, double gain) {
  const double bounded = std::min(loss, 0.95);
  return std::min(1.0 + gain * bounded / (1.0 - bounded), 10.0);
}

/// RateStoreIface adapter that turns each publish into a delivery event
/// visibility_delay later (kDeliveryStratum, so an arrival that coincides
/// with a metering read lands first — the boundary the lookback store's
/// `ts <= now - delay` included). Reads go straight to the arrived state.
class PropagatingStore final : public RateStoreIface {
 public:
  PropagatingStore(EventQueue& queue, EventRateStore& inner)
      : queue_(queue), inner_(inner) {}

  void publish(NpgId npg, QosClass qos, HostId host, Gbps total, Gbps conform,
               double now_seconds) override {
    queue_.schedule_in(inner_.visibility_delay(), kDeliveryStratum,
                       [this, npg, qos, host, total, conform, now_seconds] {
                         inner_.deliver(npg, qos, host, total, conform, now_seconds,
                                        queue_.now());
                       });
  }

  [[nodiscard]] ServiceRates aggregate(NpgId npg, QosClass qos,
                                       double now_seconds) const override {
    return inner_.read(npg, qos, now_seconds);
  }

 private:
  EventQueue& queue_;
  EventRateStore& inner_;
};

void validate(const DrillConfig& config) {
  NETENT_EXPECTS(config.host_count >= 2);
  NETENT_EXPECTS(config.tick_seconds > 0.0);
  NETENT_EXPECTS(config.duration_seconds > config.tick_seconds);
  NETENT_EXPECTS(config.flows_per_host >= 1);
  NETENT_EXPECTS(config.phase_jitter_seconds >= 0.0);
  for (const AclStage& stage : config.acl_stages) {
    NETENT_EXPECTS(stage.drop_fraction >= 0.0 && stage.drop_fraction <= 1.0);
  }
  for (const DrillFault& fault : config.faults) {
    NETENT_EXPECTS(fault.at_seconds >= 0.0);
    const bool host_scoped = fault.kind != DrillFault::Kind::store_partition &&
                             fault.kind != DrillFault::Kind::store_heal;
    if (host_scoped) NETENT_EXPECTS(fault.host < config.host_count);
  }
}

}  // namespace

DrillEngine::DrillEngine(DrillConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  validate(config_);
}

std::vector<DrillTick> DrillEngine::run() {
  const std::size_t n = config_.host_count;
  DrillMetrics& dm = drill_metrics();
  dm.runs.add();

  // --- static setup ---------------------------------------------------
  // Heterogeneous host demand weights. RNG consumption order (weights, then
  // pool forks, then jitter offsets) is part of the compat contract: the
  // jitter draws come last and only when jitter is on, so phase_jitter == 0
  // replays the historical streams untouched.
  std::vector<double> weight(n);
  double weight_norm = 0.0;
  for (double& w : weight) {
    w = std::exp(0.3 * rng_.normal());
    weight_norm += w;
  }
  for (double& w : weight) w /= weight_norm;

  const auto demand_at = [&](double t) {
    const double progress = std::min(1.0, t / config_.demand_ramp_end_seconds);
    return config_.demand_start.value() +
           (config_.demand_end - config_.demand_start).value() * progress;
  };
  // Lockstep-rule evaluation of the ACL schedule at time t (vector-last
  // stage whose start has passed wins); used only to precompute the value
  // each stage-start event installs.
  const auto acl_at = [&](double t) {
    double fraction = 0.0;
    for (const AclStage& stage : config_.acl_stages) {
      if (t >= stage.start_seconds) fraction = stage.drop_fraction;
    }
    return fraction;
  };

  // --- event spine -----------------------------------------------------
  EventQueue queue;

  // Contract and ACL state, mutated by kControlStratum events so a change
  // always lands before the same-timestamp sweep / metering reads.
  Gbps current_entitled = config_.entitled_cut_seconds <= 0.0 ? config_.entitled_reduced
                                                              : config_.entitled_initial;
  double current_acl = acl_at(0.0);
  if (config_.entitled_cut_seconds > 0.0) {
    queue.schedule(config_.entitled_cut_seconds, kControlStratum,
                   [&] { current_entitled = config_.entitled_reduced; });
  }
  for (const AclStage& stage : config_.acl_stages) {
    if (stage.start_seconds <= 0.0) continue;  // folded into the initial value
    const double fraction = acl_at(stage.start_seconds);
    queue.schedule(stage.start_seconds, kControlStratum,
                   [&current_acl, fraction] { current_acl = fraction; });
  }

  // --- enforcement plane ----------------------------------------------
  // Exact ordered sums in compat mode (bit-identical to the lookback
  // store); O(1) integer-delta aggregation once the fleet is jittered and
  // reads no longer batch per timestamp.
  const bool compat = config_.phase_jitter_seconds == 0.0;
  EventRateStore inner(compat ? EventRateStore::AggregateMode::kExactOrdered
                              : EventRateStore::AggregateMode::kFastDelta,
                       config_.store_visibility_delay_seconds);
  PropagatingStore store(queue, inner);
  const Marker marker(config_.marking, config_.marking_groups);
  const EntitlementQuery query = [&](NpgId npg, QosClass qos, double /*now*/) {
    NETENT_EXPECTS(npg == kColdstorage);
    NETENT_EXPECTS(qos == config_.qos);
    return EntitlementAnswer{true, current_entitled};
  };

  std::vector<BpfClassifier> classifiers;
  classifiers.reserve(n);
  std::vector<std::unique_ptr<HostAgent>> agents;
  agents.reserve(n);
  const AgentConfig agent_config{config_.metering_interval_seconds,
                                 config_.publish_interval_seconds};
  for (std::size_t h = 0; h < n; ++h) {
    classifiers.emplace_back(marker);
  }
  for (std::size_t h = 0; h < n; ++h) {
    std::unique_ptr<Meter> meter;
    if (config_.stateful_meter) {
      // Damped gain: the rate store adds a cycle of observation delay, so
      // the undamped Equation-6 loop would oscillate around the entitlement.
      meter = std::make_unique<StatefulMeter>(2.0, 0.4);
    } else {
      meter = std::make_unique<StatelessMeter>();
    }
    agents.push_back(std::make_unique<HostAgent>(HostId(static_cast<std::uint32_t>(h)),
                                                 kColdstorage, config_.qos, agent_config,
                                                 std::move(meter), query, store,
                                                 classifiers[h]));
  }

  // WAN egress port: a 2 ms service quantum makes queueing visible in RTT
  // at realistic utilizations (Figure 13's "slight increase").
  const PriorityQueueSwitch port(config_.port_capacity, 2.0, 15.0);
  const std::size_t service_queue = queue_for(dscp_for(config_.qos));

  // --- transport / application state -----------------------------------
  std::vector<double> nonconf_send_factor(n, 1.0);
  std::vector<TcpAggregate> tcp_state(n, TcpAggregate(config_.tcp));
  std::vector<ConnectionPool> connections;
  connections.reserve(n);
  ConnectionPoolConfig pool_config;
  pool_config.slots = config_.flows_per_host;
  pool_config.mean_lifetime_ticks = std::max(1.0, 60.0 / config_.tick_seconds * 5.0);
  for (std::size_t h = 0; h < n; ++h) connections.emplace_back(pool_config, rng_.fork());
  double prev_conf_loss = 0.0;
  std::vector<double> dead_for(n, 0.0);
  double write_pinned = 0.0;
  double write_latency_ewma = config_.write_base_latency_ms;
  std::vector<bool> host_alive(n, true);

  // Seed-derived timer phases, drawn after every historical stream.
  std::vector<double> publish_phase(n, 0.0);
  std::vector<double> metering_phase(n, 0.0);
  if (!compat) {
    for (std::size_t h = 0; h < n; ++h) {
      publish_phase[h] = rng_.uniform(0.0, config_.phase_jitter_seconds);
      metering_phase[h] = rng_.uniform(0.0, config_.phase_jitter_seconds);
    }
  }

  std::unique_ptr<ThreadPool> pool;
  const std::size_t drill_threads = config_.drill_threads();
  if (drill_threads > 1 && n > 1) {
    pool = std::make_unique<ThreadPool>(std::min(drill_threads, n));
  }
  const auto for_each_host = [&](const std::function<void(std::size_t)>& body) {
    if (pool) {
      pool->parallel_for(0, n, body);
    } else {
      for (std::size_t h = 0; h < n; ++h) body(h);
    }
  };

  // --- world sweep ------------------------------------------------------
  std::vector<DrillTick> ticks;
  const auto total_ticks =
      static_cast<std::size_t>(config_.duration_seconds / config_.tick_seconds);
  ticks.reserve(total_ticks);
  std::vector<double> offered(kQueueCount, 0.0);
  std::vector<double> host_conf(n, 0.0);
  std::vector<double> host_nonconf(n, 0.0);
  std::vector<double> host_marked_share(n, 0.0);
  std::vector<ConnectionStats> host_stats(n);

  const auto sweep = [&] {
    const double t = queue.now();
    const double demand = demand_at(t);
    const double acl = current_acl;

    // 1. Hosts classify their egress traffic through the kernel stage.
    double conf_sent = 0.0;
    double nonconf_sent = 0.0;
    const double flow_rate_divisor = static_cast<double>(config_.flows_per_host);
    for_each_host([&](std::size_t h) {
      if (!host_alive[h]) {
        // Machine death fault: no egress at all.
        host_marked_share[h] = 0.0;
        host_conf[h] = 0.0;
        host_nonconf[h] = 0.0;
        return;
      }
      const double host_demand = demand * weight[h];
      std::uint64_t marked_flows = 0;
      for (std::size_t f = 0; f < config_.flows_per_host; ++f) {
        const EgressMeta meta{kColdstorage, config_.qos, HostId(static_cast<std::uint32_t>(h)),
                              static_cast<std::uint64_t>(h) * 1000 + f};
        if (classifiers[h].classify(meta) == kNonConformingDscp) ++marked_flows;
      }
      // Sharded-counter writes from the pool threads; integer increments, so
      // the merged totals match the serial run bit for bit.
      dm.flows_classified.add(config_.flows_per_host);
      if (marked_flows != 0) dm.flows_marked.add(marked_flows);
      const double marked = static_cast<double>(marked_flows) / flow_rate_divisor;
      host_marked_share[h] = marked;
      // Transport reaction: non-conforming flows send at a collapsed rate
      // under loss; conforming flows are unaffected (paper: conforming
      // metrics flat throughout).
      host_conf[h] = host_demand * (1.0 - marked);
      host_nonconf[h] = host_demand * marked * nonconf_send_factor[h];
    });
    for (std::size_t h = 0; h < n; ++h) {
      conf_sent += host_conf[h];
      nonconf_sent += host_nonconf[h];
    }

    // 2. ACL stage drops a scheduled fraction of non-conforming traffic.
    const double acl_dropped = nonconf_sent * acl;
    const double nonconf_after_acl = nonconf_sent - acl_dropped;

    // 3. Bottleneck port with strict-priority queues.
    std::fill(offered.begin(), offered.end(), 0.0);
    offered[service_queue] = conf_sent + config_.background_conforming.value();
    offered[kNonConformingQueue] = nonconf_after_acl;
    const auto outcomes = port.transmit(offered);

    const double conf_queue_offered = offered[service_queue];
    const double conf_loss =
        conf_queue_offered > kEps ? outcomes[service_queue].dropped_gbps / conf_queue_offered
                                  : 0.0;
    const double nonconf_network_dropped =
        acl_dropped + outcomes[kNonConformingQueue].dropped_gbps;
    const double nonconf_loss =
        nonconf_sent > kEps ? nonconf_network_dropped / nonconf_sent : acl;

    if constexpr (obs::kEnabled) {
      // Serial reduction values, converted to integer volumes: identical for
      // every thread count.
      const double dt = config_.tick_seconds;
      dm.ticks.add();
      dm.conform_sent_mgbit.add(mgbit(conf_sent, dt));
      dm.nonconf_sent_mgbit.add(mgbit(nonconf_sent, dt));
      dm.acl_dropped_mgbit.add(mgbit(acl_dropped, dt));
      dm.port_conf_dropped_mgbit.add(mgbit(outcomes[service_queue].dropped_gbps, dt));
      dm.port_nonconf_dropped_mgbit.add(mgbit(outcomes[kNonConformingQueue].dropped_gbps, dt));
    }

    // 4. Transport adaptation for the next tick (EWMA toward goodput share).
    // The floor models retry/SYN baseline traffic: even fully-dropped flows
    // keep attempting, so the host-observed TotalRate never collapses all
    // the way to the conforming rate (which would spuriously trigger the
    // meters' back-in-conformance recovery).
    constexpr double kSendFloor = 0.05;
    for (std::size_t h = 0; h < n; ++h) {
      const double host_loss = host_marked_share[h] > kEps ? nonconf_loss : 0.0;
      if (config_.transport == DrillConfig::Transport::aimd) {
        nonconf_send_factor[h] = tcp_state[h].observe_loss(host_loss);
      } else {
        const double target = 1.0 - host_loss;
        nonconf_send_factor[h] =
            std::clamp(0.5 * nonconf_send_factor[h] + 0.5 * target, kSendFloor, 1.0);
      }
    }
    prev_conf_loss = conf_loss;

    // 5. Agents observe their local rates. Their publish/metering cycles are
    // no longer part of the sweep: each agent's own kAgentStratum timers run
    // them (after this sweep when the phases coincide — value-identical to
    // the historical in-sweep placement, since agents only mutate state the
    // next sweep reads).
    for (std::size_t h = 0; h < n; ++h) {
      agents[h]->observe_local(Gbps(host_conf[h] + host_nonconf[h]), Gbps(host_conf[h]));
    }

    // 6. Application model.
    double read_latency_num = 0.0;
    double read_weight = 0.0;
    double marked_host_fraction = 0.0;
    for (std::size_t h = 0; h < n; ++h) {
      const bool fully_marked = host_marked_share[h] > 0.999;
      const bool dead = !host_alive[h] || (fully_marked && nonconf_loss > 0.99);
      dead_for[h] = dead ? dead_for[h] + config_.tick_seconds : 0.0;
      marked_host_fraction += host_marked_share[h] / static_cast<double>(n);

      // Reads: requests spread over hosts; after failover_delay the
      // application stops sending reads to dead hosts entirely.
      const bool failed_over = dead_for[h] >= config_.failover_delay_seconds;
      if (failed_over) continue;  // host serves no reads; healthy hosts absorb them
      const double host_loss =
          host_alive[h] ? host_marked_share[h] * nonconf_loss : 1.0;
      const double latency =
          config_.read_base_latency_ms * lossy_latency_factor(host_loss, 4.0);
      read_latency_num += latency;
      read_weight += 1.0;
    }
    const double read_latency =
        read_weight > 0.0 ? read_latency_num / read_weight : config_.read_base_latency_ms;

    // Writes: sessions pinned to marked hosts drain away with a long time
    // constant; their latency reflects the loss they experience.
    const double pin_target = marked_host_fraction;
    const double decay = config_.tick_seconds / config_.write_session_tau_seconds;
    if (pin_target > write_pinned) {
      write_pinned = pin_target;  // new markings take effect immediately
    } else {
      write_pinned += (pin_target - write_pinned) * decay;  // slow migration away
    }
    const double write_loss = write_pinned * nonconf_loss;
    const double write_latency_now =
        config_.write_base_latency_ms * lossy_latency_factor(write_loss, 6.0);
    write_latency_ewma = 0.7 * write_latency_ewma + 0.3 * write_latency_now;
    const double block_error_rate = std::min(1.0, write_pinned * nonconf_loss * 0.8);

    // 7. Connection stats from the per-host pools: hosts whose traffic is
    // marked experience the non-conforming loss; the rest see the (near
    // zero) conforming loss; a dead machine rejects every attempt.
    double conf_syn = 0.0;
    double nonconf_syn = 0.0;
    double nonconf_rst = 0.0;
    double conf_fin = 0.0;
    for_each_host([&](std::size_t h) {
      const bool marked = host_marked_share[h] > 0.5;
      const double host_loss =
          !host_alive[h] ? 1.0 : (marked ? nonconf_loss : prev_conf_loss);
      host_stats[h] = connections[h].tick(host_loss);
    });
    for (std::size_t h = 0; h < n; ++h) {
      const bool marked = host_marked_share[h] > 0.5;
      const ConnectionStats& stats = host_stats[h];
      const double syn_per_s = static_cast<double>(stats.syn_sent) / config_.tick_seconds;
      (marked ? nonconf_syn : conf_syn) += syn_per_s;
      if (marked) {
        nonconf_rst += static_cast<double>(stats.resets) / config_.tick_seconds;
      } else {
        conf_fin += static_cast<double>(stats.fins) / config_.tick_seconds;
      }
    }

    // 8. Record the tick.
    DrillTick tick;
    tick.t_seconds = t;
    tick.acl_drop_fraction = acl;
    tick.entitled = current_entitled.value();
    tick.demand = demand;
    tick.total_rate = conf_sent + nonconf_sent;
    tick.conform_rate = conf_sent;
    tick.conform_loss_ratio = conf_loss;
    tick.nonconform_loss_ratio = nonconf_loss;
    tick.conform_rtt_ms = config_.base_rtt_ms + outcomes[service_queue].queue_delay_ms;
    tick.nonconform_rtt_ms =
        config_.base_rtt_ms + outcomes[kNonConformingQueue].queue_delay_ms;
    tick.conform_syn_per_s = conf_syn;
    tick.nonconform_syn_per_s = nonconf_syn;
    tick.nonconform_rst_per_s = nonconf_rst;
    tick.conform_fin_per_s = conf_fin;
    tick.read_latency_ms = read_latency;
    tick.write_latency_ms = write_latency_ewma;
    tick.block_error_rate = block_error_rate;
    ticks.push_back(tick);
  };

  // --- timers -----------------------------------------------------------
  PeriodicTimer world_timer(queue, config_.tick_seconds, kWorldStratum, sweep);
  world_timer.start_at(0.0);

  // Per-agent publish/metering timers, created interleaved per host so the
  // same-timestamp FIFO reproduces the historical "publish, then meter, per
  // host in order" sequence in compat mode.
  std::vector<std::unique_ptr<PeriodicTimer>> publish_timers;
  std::vector<std::unique_ptr<PeriodicTimer>> metering_timers;
  publish_timers.reserve(n);
  metering_timers.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    HostAgent* agent = agents[h].get();
    publish_timers.push_back(std::make_unique<PeriodicTimer>(
        queue, config_.publish_interval_seconds, kAgentStratum,
        [agent, &queue] { agent->publish_now(queue.now()); }));
    metering_timers.push_back(std::make_unique<PeriodicTimer>(
        queue, config_.metering_interval_seconds, kAgentStratum,
        [agent, &queue] { agent->run_metering(queue.now()); }));
    publish_timers[h]->start_at(publish_phase[h]);
    metering_timers[h]->start_at(metering_phase[h]);
  }

  // --- fault injection --------------------------------------------------
  const auto apply_fault = [&](const DrillFault& fault) {
    FaultMetrics& fm = fault_metrics();
    const std::size_t h = fault.host;
    switch (fault.kind) {
      case DrillFault::Kind::agent_crash:
        fm.agent_crashes.add();
        publish_timers[h]->stop();
        metering_timers[h]->stop();
        break;
      case DrillFault::Kind::agent_restart:
        fm.agent_restarts.add();
        agents[h]->restart();
        publish_timers[h]->start_at(queue.now());
        metering_timers[h]->start_at(queue.now());
        break;
      case DrillFault::Kind::store_partition:
        fm.store_partitions.add();
        inner.set_partitioned(true);
        break;
      case DrillFault::Kind::store_heal:
        fm.store_heals.add();
        inner.set_partitioned(false);
        break;
      case DrillFault::Kind::host_down:
        fm.host_downs.add();
        host_alive[h] = false;
        publish_timers[h]->stop();  // the machine took its agent with it
        metering_timers[h]->stop();
        break;
      case DrillFault::Kind::host_up:
        fm.host_ups.add();
        host_alive[h] = true;
        agents[h]->restart();
        publish_timers[h]->start_at(queue.now());
        metering_timers[h]->start_at(queue.now());
        break;
    }
  };
  for (const DrillFault& fault : config_.faults) {
    queue.schedule(fault.at_seconds, kControlStratum,
                   [&apply_fault, fault] { apply_fault(fault); });
  }

  // --- run --------------------------------------------------------------
  const double last_tick_seconds =
      static_cast<double>(total_ticks - 1) * config_.tick_seconds;
  queue.run_until(last_tick_seconds);
  world_timer.stop();
  for (std::size_t h = 0; h < n; ++h) {
    publish_timers[h]->stop();
    metering_timers[h]->stop();
  }

  stats_.events_scheduled = queue.scheduled_count();
  stats_.events_executed = queue.executed_count();
  stats_.events_cancelled = queue.cancelled_count();
  stats_.ticks_recorded = ticks.size();
  return ticks;
}

}  // namespace netent::sim
