// Contract approval (§4.3, Algorithm 2): HOSE_APPROVAL converts hose
// requests into representative pipe realizations, PIPE_APPROVAL assesses each
// realization against failure risk (via the Risk Simulation System) with QoS
// classes processed in priority order, and per-hose approvals are aggregated
// as min-over-realizations of the summed pipe approvals.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/exec_config.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "common/units.h"
#include "hose/requests.h"
#include "hose/space.h"
#include "risk/fast_estimator.h"
#include "risk/simulator.h"
#include "topology/routing.h"

namespace netent::approval {

/// The approval plane's rate epsilon (Gbps): rates within this of zero are
/// "nothing", and a shortfall within this of zero is "fully approved". One
/// named constant shared by the approval engine, the negotiation layer
/// (CounterProposal::fully_approved) and the admission service, so the three
/// surfaces agree on what counts as an approval.
inline constexpr double kRateEpsGbps = 1e-6;

struct ApprovalConfig {
  double slo_availability = 0.9998;  ///< contract SLO target
  std::size_t realizations = 16;     ///< representative TMs per hose set
  risk::ScenarioConfig scenarios;
  /// Execution resources for the risk-scenario sweep. Approvals are
  /// bit-identical for every thread count; this only changes wall-clock
  /// time. Unset `exec.threads` means the hardware concurrency.
  common::ExecConfig exec;
  /// Effective sweep thread count (`exec.threads`, defaulting to the
  /// hardware concurrency).
  [[nodiscard]] std::size_t sweep_threads() const { return exec.resolve(); }
  /// Paper's strict mode: "Only when 100% of the flow meets SLO, the batch
  /// of flows is approved. If any flow fails, the batch is rejected." A
  /// batch is the pipes of one (NPG, QoS class) group. When false, each pipe
  /// is approved at the largest rate meeting the SLO (partial approvals,
  /// §4.3's under-approval discussion).
  bool strict_batch = false;
  /// Two-tier risk verification (risk/fast_estimator.h): when enabled, pipe
  /// approvals first try the conservative analytical bound and only fall
  /// back to the exact scenario sweep when it cannot clear the SLO (plus
  /// `fastpath.slo_margin`). Approved rates are bit-identical either way —
  /// the bound is never optimistic, so a fast admit is exactly the full
  /// approval the sweep would have produced. Default: exact-only.
  risk::FastPathConfig fastpath;
};

struct PipeApprovalResult {
  hose::PipeRequest request;
  Gbps approved;
  /// Availability achievable at the full requested rate (diagnostics).
  double availability_at_request = 0.0;
};

struct HoseApprovalResult {
  hose::HoseRequest request;
  Gbps approved;
};

/// Predicate marking low-touch NPGs; low-touch demand is satisfied first
/// within each QoS class (§4.3). Defaults to "nothing is low-touch".
using LowTouchPredicate = std::function<bool(NpgId)>;

class ApprovalEngine {
 public:
  ApprovalEngine(topology::Router& router, ApprovalConfig config);

  void set_low_touch(LowTouchPredicate predicate) { low_touch_ = std::move(predicate); }

  /// Algorithm 2, PIPE_APPROVAL. Pipes are ordered premium-class-first
  /// (low-touch demand first within a class) and risk is assessed jointly in
  /// that order: per failure scenario, placement is strict-priority, which
  /// both enforces the class priority of §4.3 and keeps lower classes'
  /// availability curves honest. Result order matches the input order.
  [[nodiscard]] std::vector<PipeApprovalResult> pipe_approval(
      std::span<const hose::PipeRequest> pipes) const;

  /// The joint placement order pipe_approval assesses risk in: QoS classes
  /// premium-first, low-touch demand first within a class, then input order.
  /// Exposed so alternative risk backends (the admission service's residual-
  /// capacity assessor) place pipes in the exact same sequence.
  [[nodiscard]] std::vector<std::size_t> placement_order(
      std::span<const hose::PipeRequest> pipes) const;

  /// Risk backend extension point: maps placement-ordered demands to one
  /// availability curve per demand (same order). pipe_approval uses the
  /// engine's own RiskSimulator; the admission service substitutes a
  /// residual-capacity sweep. The provider must not consume engine RNG state
  /// so the surrounding approval stays bit-identical across backends.
  using CurveProvider =
      std::function<std::vector<risk::AvailabilityCurve>(std::span<const topology::Demand>)>;

  /// What the fast tier did for one pipe_approval_with call.
  struct FastPassResult {
    bool attempted = false;  ///< a fast estimator was consulted
    bool hit = false;        ///< every pipe cleared; the exact sweep was skipped
    /// On a hit: the conservative bound per placement-ordered demand (the
    /// admission service's audit replays these against the exact sweep).
    std::vector<double> bounds;
  };

  /// PIPE_APPROVAL with a caller-supplied risk backend. Ordering, SLO
  /// lookup, strict-batch handling and verdict metrics are identical to
  /// pipe_approval; only ASSESS_RISK is delegated.
  ///
  /// When `fast` is non-null and `config().fastpath.enabled`, the call first
  /// tries the analytical tier: if every placement-ordered demand's bound
  /// clears slo_availability + fastpath.slo_margin (accounting earlier
  /// window demands via worst-case link charges), all pipes are approved at
  /// their full requested rates WITHOUT invoking `curves_for` — which is
  /// exactly what the exact tier would have approved, the bound being a
  /// lower bound on the exact availability. `fast` must summarize the same
  /// residual state `curves_for` assesses against (the caller owns that
  /// contract); `fast_out`, when given, reports the tier taken. On fast hits
  /// `availability_at_request` carries the conservative bound rather than
  /// the exact availability.
  [[nodiscard]] std::vector<PipeApprovalResult> pipe_approval_with(
      std::span<const hose::PipeRequest> pipes, const CurveProvider& curves_for,
      const risk::FastEstimator* fast = nullptr, FastPassResult* fast_out = nullptr) const;

  /// As pipe_approval_with, but warming (fast tier) through a
  /// caller-supplied router instead of the engine's own. The sharded
  /// admission plane runs one of these per shard worker concurrently: every
  /// shard owns a private Router whose deterministic k-shortest-path cache
  /// is identical to the engine router's, so results are bit-identical to
  /// the engine-router call while the engine's router stays untouched by
  /// the workers. `curves_for` must route through the same `router`.
  [[nodiscard]] std::vector<PipeApprovalResult> pipe_approval_on(
      topology::Router& router, std::span<const hose::PipeRequest> pipes,
      const CurveProvider& curves_for, const risk::FastEstimator* fast = nullptr,
      FastPassResult* fast_out = nullptr) const;

  /// Per-realization assessor extension point for hose_approval_with:
  /// receives the realization index and that realization's pipes (all
  /// groups, input order) and returns their approvals in input order.
  using PipeAssessor = std::function<std::vector<PipeApprovalResult>(
      std::size_t realization, std::span<const hose::PipeRequest> pipes)>;

  /// Segment constraints (from the segmented-hose algorithm) to apply to one
  /// (NPG, QoS) group's realizations: tighter realizations mean fewer wild
  /// corner TMs and therefore higher approvals for the same SLO.
  struct GroupSegments {
    NpgId npg;
    QosClass qos;
    std::vector<hose::SegmentConstraint> segments;
  };

  /// Algorithm 2, HOSE_APPROVAL. Hoses of each (NPG, QoS) group span a
  /// HoseSpace; `realizations` representative TMs are drawn per group (the
  /// GEN_DEMAND step), each realization's pipes are approved jointly, and
  /// per-hose approvals aggregate as min over realizations of the summed
  /// pipe approvals. Result order matches the input order.
  [[nodiscard]] std::vector<HoseApprovalResult> hose_approval(
      std::span<const hose::HoseRequest> hoses, Rng& rng) const;

  /// As above, with segmented-hose constraints applied per group.
  [[nodiscard]] std::vector<HoseApprovalResult> hose_approval(
      std::span<const hose::HoseRequest> hoses, std::span<const GroupSegments> segments,
      Rng& rng) const;

  /// HOSE_APPROVAL with a caller-supplied per-realization pipe assessor.
  /// The GEN_DEMAND realization drawing (and therefore the RNG stream) and
  /// the min-over-realizations aggregation are identical to hose_approval;
  /// only the per-realization PIPE_APPROVAL call is delegated, so a window
  /// assessed against untouched residual capacity approves bit-identically
  /// to hose_approval on the same set. Implemented as draw_realizations →
  /// assess each realization in ascending order → aggregate_realizations.
  [[nodiscard]] std::vector<HoseApprovalResult> hose_approval_with(
      std::span<const hose::HoseRequest> hoses, std::span<const GroupSegments> segments, Rng& rng,
      const PipeAssessor& assess) const;

  /// One drawn traffic realization per index: the pipes of realization k,
  /// in group iteration order (the input order hose_approval assesses).
  /// An entry may be empty (a degenerate hose set draws no pipes).
  using RealizationPipes = std::vector<std::vector<hose::PipeRequest>>;

  /// The GEN_DEMAND half of HOSE_APPROVAL, split out so callers can assess
  /// the realizations elsewhere (the sharded admission plane fans them out
  /// across shard workers): draws `config().realizations` representative
  /// pipe sets from the hoses' (NPG, QoS) spaces, consuming exactly the RNG
  /// stream hose_approval would — realization 0 samples, later ones take
  /// extreme points. The assessment MUST NOT consume engine RNG state, so
  /// drawing everything up front is stream-identical to the interleaved
  /// loop.
  [[nodiscard]] RealizationPipes draw_realizations(std::span<const hose::HoseRequest> hoses,
                                                   std::span<const GroupSegments> segments,
                                                   Rng& rng) const;

  /// The aggregation half of HOSE_APPROVAL: folds per-realization pipe
  /// approvals (`per_realization[k]` in the order of `realization_pipes[k]`,
  /// empty-pipe realizations skipped) into per-hose approved rates as
  /// min-over-realizations of per-hose approved/requested fractions, in
  /// ascending realization order — the deterministic cross-shard merge.
  /// draw + per-realization assess + aggregate is bit-identical to one
  /// hose_approval_with call, at any partition of the assessments.
  [[nodiscard]] std::vector<HoseApprovalResult> aggregate_realizations(
      std::span<const hose::HoseRequest> hoses, const RealizationPipes& realization_pipes,
      std::span<const std::vector<PipeApprovalResult>> per_realization) const;

  [[nodiscard]] const ApprovalConfig& config() const { return config_; }

  /// The engine's enumerated failure scenarios (shared with callers that run
  /// their own sweeps against the same risk model, e.g. the admission
  /// service's residual state).
  [[nodiscard]] std::span<const risk::FailureScenario> scenarios() const { return scenarios_; }

  /// The engine-lifetime risk simulator (exposes the SRLG index and base
  /// capacities backing every approval).
  [[nodiscard]] const risk::RiskSimulator& simulator() const { return simulator_; }

  /// Catches the engine up after a topology mutation (the router must have
  /// resync_topology()'d first): re-enumerates the failure scenarios,
  /// re-binds the simulator to the new base capacities, and rebuilds the
  /// engine's pristine fast-tier summary. When the enumerated scenario set
  /// is value-identical to the old one (capacity-only deltas rarely move
  /// MTBF/MTTR) the scenarios_ vector is left physically in place, so spans
  /// from scenarios() taken by outside estimators stay valid. Returns
  /// whether the scenario set changed — callers holding scenario spans or
  /// per-scenario state must reconstruct it when true (and when the link
  /// count grew, regardless).
  bool resync_topology();

 private:
  topology::Router& router_;
  ApprovalConfig config_;
  LowTouchPredicate low_touch_;
  std::vector<risk::FailureScenario> scenarios_;
  /// One risk simulator (scenario set, SRLG index, base capacities) for the
  /// engine's lifetime: hose_approval's per-realization pipe approvals — and
  /// every pipe_approval call — reuse it and the router's warmed path cache
  /// instead of rebuilding per call.
  risk::RiskSimulator simulator_;
  /// Fast tier over the engine's own assessment state (every pipe_approval
  /// batch starts from the pristine base capacities). Populated only when
  /// config_.fastpath.enabled; pipe_approval passes it through.
  std::optional<risk::FastEstimator> fast_;
};

/// Total approved / total requested, the Figure 22 metric.
[[nodiscard]] double approval_percentage(std::span<const HoseApprovalResult> results,
                                         hose::Direction direction);

}  // namespace netent::approval
