#include "approval/approval.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/placement_arena.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace netent::approval {

using hose::Direction;
using hose::HoseRequest;
using hose::PipeRequest;
using topology::Demand;

namespace {
constexpr double kEps = kRateEpsGbps;  ///< local alias for brevity

struct ApprovalMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& fastpath_hits = reg.counter("risk.fastpath.hits");
  obs::Counter& fastpath_fallbacks = reg.counter("risk.fastpath.fallbacks");
  obs::Counter& fastpath_demands_cleared = reg.counter("risk.fastpath.demands_cleared");
  obs::Counter& pipe_requests = reg.counter("approval.pipe.requests");
  obs::Counter& pipe_approved_full = reg.counter("approval.pipe.approved_full");
  obs::Counter& pipe_downgraded = reg.counter("approval.pipe.downgraded");
  obs::Counter& pipe_denied = reg.counter("approval.pipe.denied");
  obs::Counter& pipe_batch_rejected = reg.counter("approval.pipe.batch_rejected");
  obs::Counter& pipe_requested_mgbps = reg.counter("approval.pipe.requested_mgbps");
  obs::Counter& pipe_approved_mgbps = reg.counter("approval.pipe.approved_mgbps");
  obs::Counter& hose_requests = reg.counter("approval.hose.requests");
  obs::Counter& hose_approved_full = reg.counter("approval.hose.approved_full");
  obs::Counter& hose_downgraded = reg.counter("approval.hose.downgraded");
  obs::Counter& hose_denied = reg.counter("approval.hose.denied");
  obs::Counter& hose_requested_mgbps = reg.counter("approval.hose.requested_mgbps");
  obs::Counter& hose_approved_mgbps = reg.counter("approval.hose.approved_mgbps");
  obs::Histogram& assess_seconds = reg.timer_histogram("approval.pipe.assess_seconds");
};

ApprovalMetrics& metrics() {
  static ApprovalMetrics instance;
  return instance;
}

std::uint64_t mgbps(Gbps rate) {
  return static_cast<std::uint64_t>(std::llround(rate.value() * 1e3));
}

/// full / downgraded / denied verdict tallies shared by both pipelines.
void count_verdict(Gbps requested, Gbps approved, obs::Counter& full, obs::Counter& downgraded,
                   obs::Counter& denied) {
  if (approved >= requested - Gbps(kEps)) {
    full.add();
  } else if (approved <= Gbps(kEps)) {
    denied.add();
  } else {
    downgraded.add();
  }
}
}  // namespace

ApprovalEngine::ApprovalEngine(topology::Router& router, ApprovalConfig config)
    : router_(router),
      config_(std::move(config)),
      low_touch_([](NpgId) { return false; }),
      scenarios_(risk::enumerate_scenarios(router.topo(), config_.scenarios)),
      simulator_(router_, scenarios_, router_.full_capacities()) {
  NETENT_EXPECTS(config_.slo_availability > 0.0 && config_.slo_availability <= 1.0);
  NETENT_EXPECTS(config_.realizations >= 1);
  NETENT_EXPECTS(config_.fastpath.slo_margin >= 0.0);
  if (config_.fastpath.enabled) {
    // The engine assesses every batch against the pristine base capacities,
    // so its headroom summary is the base capacity itself.
    fast_.emplace(router_.topo(), scenarios_);
    fast_->rebuild_pristine(router_.full_capacities());
  }
}

bool ApprovalEngine::resync_topology() {
  std::vector<risk::FailureScenario> fresh =
      risk::enumerate_scenarios(router_.topo(), config_.scenarios);
  const bool scenarios_changed =
      fresh.size() != scenarios_.size() ||
      !std::equal(fresh.begin(), fresh.end(), scenarios_.begin(),
                  [](const risk::FailureScenario& a, const risk::FailureScenario& b) {
                    return a.probability == b.probability && a.down == b.down;
                  });
  // Keep the vector physically in place when the set is value-identical, so
  // scenario spans held by outside fast estimators stay valid.
  if (scenarios_changed) scenarios_ = std::move(fresh);
  simulator_.resync(scenarios_, router_.full_capacities());
  if (config_.fastpath.enabled) {
    fast_.emplace(router_.topo(), scenarios_);
    fast_->rebuild_pristine(router_.full_capacities());
  }
  return scenarios_changed;
}

std::vector<PipeApprovalResult> ApprovalEngine::pipe_approval(
    std::span<const PipeRequest> pipes) const {
  // ASSESS_RISK over the full capacity; priority is encoded in the order.
  // The simulator (and the router's warmed path cache) is shared across
  // calls — hose_approval's realizations never rebuild it.
  return pipe_approval_with(
      pipes,
      [this](std::span<const Demand> demands) {
        return simulator_.availability_curves(demands, config_.sweep_threads());
      },
      fast_.has_value() ? &*fast_ : nullptr);
}

std::vector<std::size_t> ApprovalEngine::placement_order(
    std::span<const PipeRequest> pipes) const {
  // Placement order: QoS classes premium-first (the priority requirement of
  // SS4.3), low-touch demand first within a class, then input order. Risk is
  // assessed JOINTLY in this order: strict-priority placement per scenario
  // both enforces class priority and keeps the availability curves honest
  // for lower classes (a per-class reservation approximation can overstate
  // what survives a failure, breaking the SLO promise).
  std::vector<std::size_t> order;
  order.reserve(pipes.size());
  for (const QosClass qos : qos_priority_order()) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      if (pipes[i].qos == qos) indices.push_back(i);
    }
    std::stable_sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return low_touch_(pipes[a].npg) && !low_touch_(pipes[b].npg);
    });
    order.insert(order.end(), indices.begin(), indices.end());
  }
  return order;
}

std::vector<PipeApprovalResult> ApprovalEngine::pipe_approval_with(
    std::span<const PipeRequest> pipes, const CurveProvider& curves_for,
    const risk::FastEstimator* fast, FastPassResult* fast_out) const {
  return pipe_approval_on(router_, pipes, curves_for, fast, fast_out);
}

std::vector<PipeApprovalResult> ApprovalEngine::pipe_approval_on(
    topology::Router& router, std::span<const PipeRequest> pipes, const CurveProvider& curves_for,
    const risk::FastEstimator* fast, FastPassResult* fast_out) const {
  std::vector<PipeApprovalResult> results(pipes.size());
  for (std::size_t i = 0; i < pipes.size(); ++i) results[i].request = pipes[i];
  if (fast_out != nullptr) *fast_out = {};
  if (pipes.empty()) return results;

  ApprovalMetrics& m = metrics();
  const obs::ScopedTimer span(m.assess_seconds);
  m.pipe_requests.add(pipes.size());

  const std::vector<std::size_t> order = placement_order(pipes);

  std::vector<Demand> demands;
  demands.reserve(order.size());
  for (const std::size_t i : order) {
    demands.push_back({pipes[i].src, pipes[i].dst, pipes[i].rate});
  }

  // --- Tier 1: the analytical bound. A hit approves every pipe at its full
  // requested rate — bit-identical to what the exact sweep would return,
  // since each bound is a lower bound on the exact availability at that
  // rate — and skips the sweep entirely.
  if (fast != nullptr && config_.fastpath.enabled) {
    router.warm(demands);  // fast hits still commit/audit via cached paths
    const double need = config_.slo_availability + config_.fastpath.slo_margin;
    auto consumed_loan = common::PlacementArena::local().doubles();
    std::vector<double>& consumed = *consumed_loan;
    consumed.assign(fast->link_count(), 0.0);
    std::vector<double> bounds;
    bounds.reserve(demands.size());
    bool cleared = true;
    for (const Demand& demand : demands) {
      const topology::PathList paths = router.cached_paths(demand.src, demand.dst);
      const double bound =
          paths.valid() ? fast->bound(demand.amount.value(), paths, consumed) : 0.0;
      if (bound < need) {
        cleared = false;
        break;
      }
      bounds.push_back(bound);
      risk::FastEstimator::charge(demand.amount.value(), paths, consumed);
    }
    if (fast_out != nullptr) fast_out->attempted = true;
    if (cleared) {
      for (std::size_t k = 0; k < order.size(); ++k) {
        PipeApprovalResult& result = results[order[k]];
        result.approved = result.request.rate;
        result.availability_at_request = bounds[k];
      }
      m.fastpath_hits.add();
      m.fastpath_demands_cleared.add(demands.size());
      if (fast_out != nullptr) {
        fast_out->hit = true;
        fast_out->bounds = std::move(bounds);
      }
      // strict_batch needs no pass: every pipe is fully approved.
      for (const PipeApprovalResult& result : results) {
        count_verdict(result.request.rate, result.approved, m.pipe_approved_full,
                      m.pipe_downgraded, m.pipe_denied);
        m.pipe_requested_mgbps.add(mgbps(result.request.rate));
        m.pipe_approved_mgbps.add(mgbps(result.approved));
      }
      return results;
    }
    m.fastpath_fallbacks.add();
  }

  // --- Tier 2: the exact scenario sweep.
  const auto curves = curves_for(demands);
  NETENT_ENSURES(curves.size() == demands.size());

  for (std::size_t k = 0; k < order.size(); ++k) {
    PipeApprovalResult& result = results[order[k]];
    const Gbps at_slo = curves[k].bandwidth_at(config_.slo_availability);
    result.approved = min(result.request.rate, at_slo);
    result.availability_at_request = curves[k].availability_at(result.request.rate);
  }

  if (config_.strict_batch) {
    // All-or-nothing per (NPG, QoS class) batch.
    std::map<std::pair<std::uint32_t, QosClass>, bool> batch_ok;
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      const bool ok = results[i].approved >= results[i].request.rate - Gbps(kEps);
      auto [it, inserted] = batch_ok.emplace(std::make_pair(pipes[i].npg.value(), pipes[i].qos), ok);
      if (!inserted) it->second = it->second && ok;
    }
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      if (!batch_ok[{pipes[i].npg.value(), pipes[i].qos}]) {
        if (results[i].approved > Gbps(kEps)) m.pipe_batch_rejected.add();
        results[i].approved = Gbps(0);
      }
    }
  }

  for (const PipeApprovalResult& result : results) {
    count_verdict(result.request.rate, result.approved, m.pipe_approved_full, m.pipe_downgraded,
                  m.pipe_denied);
    m.pipe_requested_mgbps.add(mgbps(result.request.rate));
    m.pipe_approved_mgbps.add(mgbps(result.approved));
  }
  return results;
}

std::vector<HoseApprovalResult> ApprovalEngine::hose_approval(std::span<const HoseRequest> hoses,
                                                              Rng& rng) const {
  return hose_approval(hoses, {}, rng);
}

std::vector<HoseApprovalResult> ApprovalEngine::hose_approval(
    std::span<const HoseRequest> hoses, std::span<const GroupSegments> segments, Rng& rng) const {
  return hose_approval_with(hoses, segments, rng,
                            [this](std::size_t, std::span<const PipeRequest> pipes) {
                              return pipe_approval(pipes);
                            });
}

std::vector<HoseApprovalResult> ApprovalEngine::hose_approval_with(
    std::span<const HoseRequest> hoses, std::span<const GroupSegments> segments, Rng& rng,
    const PipeAssessor& assess) const {
  NETENT_EXPECTS(!hoses.empty());
  const RealizationPipes drawn = draw_realizations(hoses, segments, rng);
  std::vector<std::vector<PipeApprovalResult>> assessed(drawn.size());
  for (std::size_t k = 0; k < drawn.size(); ++k) {
    if (drawn[k].empty()) continue;
    assessed[k] = assess(k, drawn[k]);
    NETENT_ENSURES(assessed[k].size() == drawn[k].size());
  }
  return aggregate_realizations(hoses, drawn, assessed);
}

ApprovalEngine::RealizationPipes ApprovalEngine::draw_realizations(
    std::span<const HoseRequest> hoses, std::span<const GroupSegments> segments, Rng& rng) const {
  NETENT_EXPECTS(!hoses.empty());
  const std::size_t n = router_.topo().region_count();

  // Group hoses into per-(NPG, QoS) spaces.
  struct Group {
    NpgId npg;
    QosClass qos;
    std::vector<double> egress;
    std::vector<double> ingress;
  };
  std::map<std::pair<std::uint32_t, QosClass>, Group> groups;
  for (const HoseRequest& hose : hoses) {
    NETENT_EXPECTS(hose.region.value() < n);
    auto& group = groups[{hose.npg.value(), hose.qos}];
    if (group.egress.empty()) {
      group.npg = hose.npg;
      group.qos = hose.qos;
      group.egress.assign(n, 0.0);
      group.ingress.assign(n, 0.0);
    }
    auto& side = hose.direction == Direction::egress ? group.egress : group.ingress;
    side[hose.region.value()] += hose.rate.value();
  }

  RealizationPipes drawn(config_.realizations);
  for (std::size_t k = 0; k < config_.realizations; ++k) {
    // GEN_DEMAND: one representative realization per group.
    std::vector<PipeRequest>& pipes = drawn[k];
    for (auto& [key, group] : groups) {
      hose::HoseSpace space(group.egress, group.ingress);
      for (const GroupSegments& gs : segments) {
        if (gs.npg == group.npg && gs.qos == group.qos) {
          for (const hose::SegmentConstraint& sc : gs.segments) space.add_segment(sc);
        }
      }
      const traffic::TrafficMatrix tm = k == 0 ? space.sample(rng) : space.extreme_point(rng);
      for (const Demand& demand : tm.demands()) {
        pipes.push_back(PipeRequest{group.npg, group.qos, demand.src, demand.dst, demand.amount});
      }
    }
  }
  return drawn;
}

std::vector<HoseApprovalResult> ApprovalEngine::aggregate_realizations(
    std::span<const HoseRequest> hoses, const RealizationPipes& realization_pipes,
    std::span<const std::vector<PipeApprovalResult>> per_realization) const {
  NETENT_EXPECTS(!hoses.empty());
  NETENT_EXPECTS(per_realization.size() == realization_pipes.size());

  // Per-hose approval fraction, aggregated as min over realizations of the
  // fraction of the realization's demand on that hose that met the SLO.
  // (Using fractions rather than absolute sums keeps realizations in which a
  // hose happens to be lightly used from understating its guarantee.)
  std::map<std::tuple<std::uint32_t, QosClass, std::uint32_t, Direction>, double> fraction;
  for (const HoseRequest& hose : hoses) {
    fraction[{hose.npg.value(), hose.qos, hose.region.value(), hose.direction}] = 1.0;
  }

  // Ascending realization order, always: min() commutes, but folding in a
  // fixed order keeps the floating-point story boring — results are
  // byte-comparable no matter where the assessments ran.
  for (std::size_t k = 0; k < realization_pipes.size(); ++k) {
    if (realization_pipes[k].empty()) continue;
    const std::vector<PipeApprovalResult>& pipe_results = per_realization[k];
    NETENT_EXPECTS(pipe_results.size() == realization_pipes[k].size());

    // Aggregate this realization: requested and approved per hose.
    std::map<std::tuple<std::uint32_t, QosClass, std::uint32_t, Direction>,
             std::pair<double, double>>
        sums;  // (requested, approved)
    for (const PipeApprovalResult& result : pipe_results) {
      const PipeRequest& pipe = result.request;
      auto& egress_sum =
          sums[{pipe.npg.value(), pipe.qos, pipe.src.value(), Direction::egress}];
      egress_sum.first += pipe.rate.value();
      egress_sum.second += result.approved.value();
      auto& ingress_sum =
          sums[{pipe.npg.value(), pipe.qos, pipe.dst.value(), Direction::ingress}];
      ingress_sum.first += pipe.rate.value();
      ingress_sum.second += result.approved.value();
    }
    for (auto& [key, frac] : fraction) {
      const auto it = sums.find(key);
      if (it == sums.end() || it->second.first <= kEps) continue;  // hose unused this time
      frac = std::min(frac, it->second.second / it->second.first);
    }
  }

  std::vector<HoseApprovalResult> results;
  results.reserve(hoses.size());
  ApprovalMetrics& m = metrics();
  m.hose_requests.add(hoses.size());
  for (const HoseRequest& hose : hoses) {
    const double frac =
        fraction.at({hose.npg.value(), hose.qos, hose.region.value(), hose.direction});
    const Gbps approved = hose.rate * frac;
    count_verdict(hose.rate, approved, m.hose_approved_full, m.hose_downgraded, m.hose_denied);
    m.hose_requested_mgbps.add(mgbps(hose.rate));
    m.hose_approved_mgbps.add(mgbps(approved));
    results.push_back({hose, approved});
  }
  return results;
}

double approval_percentage(std::span<const HoseApprovalResult> results, Direction direction) {
  double requested = 0.0;
  double approved = 0.0;
  for (const HoseApprovalResult& result : results) {
    if (result.request.direction != direction) continue;
    requested += result.request.rate.value();
    approved += result.approved.value();
  }
  return requested > 0.0 ? approved / requested : 1.0;
}

}  // namespace netent::approval
