// Automated bandwidth negotiation (§8 "Bandwidth Negotiation"). When the
// approval engine cannot guarantee a request in full, the manual back-and-
// forth between the network team and the service is replaced by generated
// counter-proposals:
//   (a) accept the admittable volume (partial approval, rest unguaranteed);
//   (b) move the residual demand to alternative regions where capacity and
//       failure exposure allow a guarantee (probed through the approval
//       engine);
//   (c) keep the volume but demote the residual to a lower QoS class that
//       still passes the SLO check.
#pragma once

#include <span>
#include <vector>

#include "approval/approval.h"
#include "common/rng.h"

namespace netent::approval {

struct RegionAlternative {
  RegionId region;
  Gbps guaranteed;  ///< what the residual would get if moved here
};

struct QosAlternative {
  QosClass qos = QosClass::c4_high;
  Gbps guaranteed;  ///< what the residual would get at this class
};

struct CounterProposal {
  hose::HoseRequest original;
  Gbps guaranteed;          ///< option (a): the admittable volume
  Gbps residual;            ///< demand left unguaranteed under option (a)
  std::vector<RegionAlternative> region_options;  ///< option (b), best first
  std::vector<QosAlternative> qos_options;        ///< option (c), best first

  [[nodiscard]] bool fully_approved() const { return residual <= Gbps(kRateEpsGbps); }
};

/// Derives the follow-up request a proposal option stands for, so callers
/// (operators, the spec::PolicyEngine) act on counter-proposals instead of
/// re-deriving hose fields by hand.
///
/// Option (a), accept the partial grant: the original hose at the guaranteed
/// volume.
[[nodiscard]] hose::HoseRequest apply_proposal(const CounterProposal& proposal);
/// Option (b), move the residual: the original hose re-homed to the
/// alternative region, at the residual volume capped by what that region can
/// guarantee.
[[nodiscard]] hose::HoseRequest apply_proposal(const CounterProposal& proposal,
                                               const RegionAlternative& option);
/// Option (c), demote the residual: the original hose at the lower QoS
/// class, at the residual volume capped by what that class can guarantee.
[[nodiscard]] hose::HoseRequest apply_proposal(const CounterProposal& proposal,
                                               const QosAlternative& option);

struct NegotiationConfig {
  /// Only propose alternatives that guarantee at least this fraction of the
  /// residual demand.
  double min_useful_fraction = 0.5;
  std::size_t max_region_options = 3;
  std::size_t max_qos_options = 2;
};

class NegotiationEngine {
 public:
  NegotiationEngine(topology::Router& router, ApprovalConfig approval_config,
                    NegotiationConfig config);

  /// Generates a counter-proposal for every input approval result (fully
  /// approved requests get a trivial proposal with no residual). The probes
  /// run against the same topology and SLO as the original approval.
  [[nodiscard]] std::vector<CounterProposal> negotiate(
      std::span<const HoseApprovalResult> results, Rng& rng) const;

 private:
  [[nodiscard]] Gbps probe(const hose::HoseRequest& request, Rng& rng) const;

  topology::Router& router_;
  ApprovalConfig approval_config_;
  NegotiationConfig config_;
};

}  // namespace netent::approval
