#include "approval/negotiation.h"

#include <algorithm>

#include "common/check.h"

namespace netent::approval {

using hose::Direction;
using hose::HoseRequest;

HoseRequest apply_proposal(const CounterProposal& proposal) {
  HoseRequest request = proposal.original;
  request.rate = proposal.guaranteed;
  return request;
}

HoseRequest apply_proposal(const CounterProposal& proposal, const RegionAlternative& option) {
  HoseRequest request = proposal.original;
  request.region = option.region;
  request.rate = min(proposal.residual, option.guaranteed);
  return request;
}

HoseRequest apply_proposal(const CounterProposal& proposal, const QosAlternative& option) {
  HoseRequest request = proposal.original;
  request.qos = option.qos;
  request.rate = min(proposal.residual, option.guaranteed);
  return request;
}

NegotiationEngine::NegotiationEngine(topology::Router& router, ApprovalConfig approval_config,
                                     NegotiationConfig config)
    : router_(router), approval_config_(std::move(approval_config)), config_(config) {
  NETENT_EXPECTS(config_.min_useful_fraction > 0.0 && config_.min_useful_fraction <= 1.0);
}

Gbps NegotiationEngine::probe(const HoseRequest& request, Rng& rng) const {
  // Build a well-formed hose set around the probe: the counterpart direction
  // is spread evenly over the other regions so realizations exist.
  const std::size_t n = router_.topo().region_count();
  NETENT_EXPECTS(n >= 2);
  std::vector<HoseRequest> probe_set{request};
  const Direction counterpart =
      request.direction == Direction::egress ? Direction::ingress : Direction::egress;
  const Gbps share = request.rate / static_cast<double>(n - 1);
  for (std::uint32_t r = 0; r < n; ++r) {
    if (RegionId(r) == request.region) continue;
    probe_set.push_back({request.npg, request.qos, RegionId(r), counterpart, share});
  }
  const ApprovalEngine engine(router_, approval_config_);
  const auto results = engine.hose_approval(probe_set, rng);
  return results.front().approved;
}

std::vector<CounterProposal> NegotiationEngine::negotiate(
    std::span<const HoseApprovalResult> results, Rng& rng) const {
  std::vector<CounterProposal> proposals;
  proposals.reserve(results.size());

  for (const HoseApprovalResult& result : results) {
    CounterProposal proposal;
    proposal.original = result.request;
    proposal.guaranteed = result.approved;
    proposal.residual = max(Gbps(0), result.request.rate - result.approved);
    if (proposal.fully_approved()) {
      proposals.push_back(std::move(proposal));
      continue;
    }
    const Gbps useful = proposal.residual * config_.min_useful_fraction;

    // Option (b): alternative regions for the residual.
    for (std::uint32_t r = 0; r < router_.topo().region_count(); ++r) {
      if (RegionId(r) == result.request.region) continue;
      HoseRequest moved = result.request;
      moved.region = RegionId(r);
      moved.rate = proposal.residual;
      const Gbps guaranteed = probe(moved, rng);
      if (guaranteed >= useful) proposal.region_options.push_back({RegionId(r), guaranteed});
    }
    std::sort(proposal.region_options.begin(), proposal.region_options.end(),
              [](const RegionAlternative& a, const RegionAlternative& b) {
                return a.guaranteed > b.guaranteed;
              });
    if (proposal.region_options.size() > config_.max_region_options) {
      proposal.region_options.resize(config_.max_region_options);
    }

    // Option (c): lower QoS classes for the residual. Lower classes compete
    // with less premium reservations, so a volume rejected at a premium
    // class may pass below when the premium bands are the contended ones.
    for (const QosClass qos : qos_priority_order()) {
      if (!higher_priority(result.request.qos, qos)) continue;  // only lower classes
      HoseRequest demoted = result.request;
      demoted.qos = qos;
      demoted.rate = proposal.residual;
      const Gbps guaranteed = probe(demoted, rng);
      if (guaranteed >= useful) proposal.qos_options.push_back({qos, guaranteed});
    }
    std::sort(proposal.qos_options.begin(), proposal.qos_options.end(),
              [](const QosAlternative& a, const QosAlternative& b) {
                return a.guaranteed > b.guaranteed;
              });
    if (proposal.qos_options.size() > config_.max_qos_options) {
      proposal.qos_options.resize(config_.max_qos_options);
    }

    proposals.push_back(std::move(proposal));
  }
  return proposals;
}

}  // namespace netent::approval
