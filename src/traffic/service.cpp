#include "traffic/service.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace netent::traffic {

double ServiceProfile::qos_fraction(QosClass qos) const {
  for (const QosShare& share : qos_mix) {
    if (share.qos == qos) return share.fraction;
  }
  return 0.0;
}

TrafficMatrix service_matrix(const ServiceProfile& profile, double total_rate_gbps) {
  NETENT_EXPECTS(total_rate_gbps >= 0.0);
  NETENT_EXPECTS(profile.src_weights.size() == profile.dst_weights.size());
  const std::size_t n = profile.src_weights.size();
  TrafficMatrix tm(n);

  double norm = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s != d) norm += profile.src_weights[s] * profile.dst_weights[d];
    }
  }
  NETENT_EXPECTS(norm > 0.0);

  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      const double share = profile.src_weights[s] * profile.dst_weights[d] / norm;
      if (share > 0.0) {
        tm.at(RegionId(static_cast<std::uint32_t>(s)), RegionId(static_cast<std::uint32_t>(d))) =
            total_rate_gbps * share;
      }
    }
  }
  return tm;
}

std::vector<TimeSeries> per_destination_series(const ServiceProfile& profile, RegionId src,
                                               double duration_seconds, double step_seconds,
                                               double share_jitter, Rng& rng) {
  NETENT_EXPECTS(src.value() < profile.src_weights.size());
  NETENT_EXPECTS(share_jitter >= 0.0);

  const std::size_t n = profile.dst_weights.size();
  double dst_norm = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    if (d != src.value()) dst_norm += profile.dst_weights[d];
  }
  NETENT_EXPECTS(dst_norm > 0.0);

  // Source share of the aggregate rate, by the same gravity model as
  // service_matrix (ignoring the diagonal correction, which is second-order).
  double src_norm = 0.0;
  for (const double w : profile.src_weights) src_norm += w;
  NETENT_EXPECTS(src_norm > 0.0);
  const double src_share = profile.src_weights[src.value()] / src_norm;

  std::vector<TimeSeries> out;
  out.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    if (d == src.value() || profile.dst_weights[d] == 0.0) {
      const auto samples = static_cast<std::size_t>(duration_seconds / step_seconds);
      out.emplace_back(step_seconds, std::vector<double>(samples, 0.0));
      continue;
    }
    const double dst_share = profile.dst_weights[d] / dst_norm;
    Rng stream = rng.fork();
    TimeSeries series = generate_pattern(profile.pattern, duration_seconds, step_seconds, stream);
    // Slowly drifting multiplicative jitter on the destination share: a
    // random walk in log-space, re-stepped every 6 hours.
    const auto jitter_steps = static_cast<std::size_t>(std::max(1.0, 6.0 * 3600.0 / step_seconds));
    double log_jitter = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (share_jitter > 0.0 && i % jitter_steps == 0) {
        log_jitter = 0.9 * log_jitter + share_jitter * stream.normal();
      }
      series[i] *= src_share * dst_share * std::exp(log_jitter);
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace netent::traffic
