#include "traffic/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace netent::traffic {

TimeSeries::TimeSeries(double step_seconds, std::vector<double> values)
    : step_seconds_(step_seconds), values_(std::move(values)) {
  NETENT_EXPECTS(step_seconds > 0.0);
}

double TimeSeries::at_time(double t_seconds) const {
  NETENT_EXPECTS(!values_.empty());
  auto idx = static_cast<long>(std::llround(t_seconds / step_seconds_));
  idx = std::clamp(idx, 0L, static_cast<long>(values_.size()) - 1);
  return values_[static_cast<std::size_t>(idx)];
}

TimeSeries& TimeSeries::operator+=(const TimeSeries& other) {
  NETENT_EXPECTS(other.step_seconds_ == step_seconds_);
  NETENT_EXPECTS(other.size() == size());
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
  return *this;
}

TimeSeries& TimeSeries::operator*=(double scale) {
  for (double& v : values_) v *= scale;
  return *this;
}

double TimeSeries::total() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double TimeSeries::peak() const {
  NETENT_EXPECTS(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

std::vector<double> TimeSeries::daily(DailyAggregate kind) const {
  NETENT_EXPECTS(!values_.empty());
  const auto per_day = static_cast<std::size_t>(std::llround(86400.0 / step_seconds_));
  NETENT_EXPECTS(per_day >= 1);
  const std::size_t window_6h = std::max<std::size_t>(1, per_day / 4);

  std::vector<double> result;
  for (std::size_t begin = 0; begin < values_.size(); begin += per_day) {
    const std::size_t end = std::min(begin + per_day, values_.size());
    const std::span<const double> day(&values_[begin], end - begin);
    switch (kind) {
      case DailyAggregate::mean:
        result.push_back(mean(day));
        break;
      case DailyAggregate::max:
        result.push_back(*std::max_element(day.begin(), day.end()));
        break;
      case DailyAggregate::p99: {
        std::vector<double> sorted(day.begin(), day.end());
        std::sort(sorted.begin(), sorted.end());
        result.push_back(percentile(sorted, 99.0));
        break;
      }
      case DailyAggregate::max_avg_6h: {
        // Sliding-window average, maximum over all windows in the day.
        const std::size_t w = std::min(window_6h, day.size());
        double window_sum = 0.0;
        for (std::size_t i = 0; i < w; ++i) window_sum += day[i];
        double best = window_sum;
        for (std::size_t i = w; i < day.size(); ++i) {
          window_sum += day[i] - day[i - w];
          best = std::max(best, window_sum);
        }
        result.push_back(best / static_cast<double>(w));
        break;
      }
    }
  }
  return result;
}

std::vector<double> TimeSeries::daily_percentile(double q) const {
  NETENT_EXPECTS(!values_.empty());
  const auto per_day = static_cast<std::size_t>(std::llround(86400.0 / step_seconds_));
  NETENT_EXPECTS(per_day >= 1);
  std::vector<double> result;
  for (std::size_t begin = 0; begin < values_.size(); begin += per_day) {
    const std::size_t end = std::min(begin + per_day, values_.size());
    std::vector<double> sorted(values_.begin() + static_cast<long>(begin),
                               values_.begin() + static_cast<long>(end));
    std::sort(sorted.begin(), sorted.end());
    result.push_back(percentile(sorted, q));
  }
  return result;
}

}  // namespace netent::traffic
