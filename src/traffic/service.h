// Service (NPG) profiles: the unit the entitlement process contracts with.
// A profile captures the paper's §2.1 facts about a service — its traffic
// shape, its QoS-class mix (a service's traffic can span classes), and its
// deployment footprint (which regions source/sink its traffic, and how
// concentrated that split is — the observation that enables segmented hose).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "traffic/matrix.h"
#include "traffic/patterns.h"
#include "traffic/timeseries.h"

namespace netent::traffic {

/// Fraction of a service's traffic in one QoS class.
struct QosShare {
  QosClass qos;
  double fraction;  ///< in (0, 1]; a profile's fractions sum to 1
};

struct ServiceProfile {
  NpgId id;
  std::string name;
  bool high_touch = false;  ///< one of the ~10 dominant consumers (§4.3)
  PatternSpec pattern;      ///< aggregate traffic shape (base_gbps = mean rate)
  /// §4.1: "different services need different types of daily data... daily
  /// max average of 6 hours for storage services, and daily p99 for ads".
  DailyAggregate preferred_aggregate = DailyAggregate::max_avg_6h;
  std::vector<QosShare> qos_mix;
  /// Gravity weights over regions, zero where the service is not deployed.
  std::vector<double> src_weights;
  std::vector<double> dst_weights;

  /// Mean aggregate rate across all regions and classes.
  [[nodiscard]] double mean_rate_gbps() const { return pattern.base_gbps; }

  /// Fraction of this service's traffic in `qos` (0 if none).
  [[nodiscard]] double qos_fraction(QosClass qos) const;
};

/// Splits an aggregate rate over region pairs by the gravity model
/// share(s, d) ∝ src_weights[s] * dst_weights[d], s != d.
[[nodiscard]] TrafficMatrix service_matrix(const ServiceProfile& profile, double total_rate_gbps);

/// Per-destination traffic series for one source region: F(dst, t) of Eq. 3.
/// Scales the profile's pattern by each destination's gravity share and adds
/// independent per-destination jitter so destination shares drift over time
/// (`share_jitter` is the relative sigma of that drift).
[[nodiscard]] std::vector<TimeSeries> per_destination_series(const ServiceProfile& profile,
                                                             RegionId src,
                                                             double duration_seconds,
                                                             double step_seconds,
                                                             double share_jitter, Rng& rng);

}  // namespace netent::traffic
