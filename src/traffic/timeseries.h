// Fixed-step time series of bandwidth samples. The demand-forecast pipeline
// consumes daily aggregates of these series (§4.1: "daily max average of 6
// hours for storage services, and daily p99 for ads"), and the segmented-hose
// algorithm consumes per-destination flow series F(dst, t) (§4.2, Eq. 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netent::traffic {

/// Aggregation used to reduce one day of samples to a single SLI input.
enum class DailyAggregate {
  mean,
  max,
  p99,
  max_avg_6h,  ///< maximum over the day of the 6-hour sliding average
};

/// A time series sampled every `step_seconds`, starting at t = 0.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(double step_seconds, std::vector<double> values);

  [[nodiscard]] double step_seconds() const { return step_seconds_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double duration_seconds() const {
    return step_seconds_ * static_cast<double>(values_.size());
  }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) { return values_[i]; }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  /// Sample at time t (seconds), nearest-neighbor.
  [[nodiscard]] double at_time(double t_seconds) const;

  TimeSeries& operator+=(const TimeSeries& other);
  TimeSeries& operator*=(double scale);

  [[nodiscard]] double total() const;
  [[nodiscard]] double peak() const;

  /// Reduces to one value per day using the given aggregate. The series
  /// length need not be a whole number of days; a trailing partial day is
  /// aggregated over the samples it has.
  [[nodiscard]] std::vector<double> daily(DailyAggregate kind) const;

  /// Reduces to one value per day: the q-th percentile of the day's samples
  /// (q in [0, 100]). Figures 18-19 evaluate forecasts on p50/p75/p90 inputs.
  [[nodiscard]] std::vector<double> daily_percentile(double q) const;

 private:
  double step_seconds_ = 0.0;
  std::vector<double> values_;
};

}  // namespace netent::traffic
