// Synthetic traffic pattern library (substitute for production telemetry,
// DESIGN.md §1). Reproduces the micro-level behaviours of §2.1: Coldstorage's
// regular rack-rotation spikes, Warmstorage's smooth time-of-day fluctuation,
// weekly seasonality, organic trend growth, holiday bursts and noise.
#pragma once

#include <vector>

#include "common/rng.h"
#include "traffic/timeseries.h"

namespace netent::traffic {

/// Declarative description of a service's traffic shape. The generated rate is
///   base * trend(t) * diurnal(t) * weekly(t) * holidays(t) * spike(t) * noise
/// with each factor optional (amplitude 0 disables it).
struct PatternSpec {
  double base_gbps = 100.0;
  double trend_per_year = 0.0;        ///< fractional growth per 365 days
  double diurnal_amplitude = 0.0;     ///< 0..1 time-of-day swing
  double diurnal_peak_hour = 20.0;    ///< local hour of the daily peak
  double weekly_amplitude = 0.0;      ///< 0..1 weekday/weekend swing
  double spike_amplitude = 0.0;       ///< multiplicative burst height (e.g. 1.5 => +150%)
  double spike_period_seconds = 0.0;  ///< rack-rotation cadence; 0 disables
  double spike_duty = 0.2;            ///< fraction of the period the burst is on
  double noise_sigma = 0.02;          ///< relative gaussian noise per sample
  double holiday_boost = 0.0;         ///< extra fraction on holiday days
  std::vector<int> holiday_days;      ///< day indices (from series start) that are holidays
};

/// Generates `duration_seconds / step_seconds` samples of the spec.
[[nodiscard]] TimeSeries generate_pattern(const PatternSpec& spec, double duration_seconds,
                                          double step_seconds, Rng& rng);

/// Coldstorage-like: flat base with tall regular spikes (a rack of storage
/// servers turned on periodically, Figure 3 top).
[[nodiscard]] PatternSpec coldstorage_pattern(double base_gbps);

/// Warmstorage-like: smooth diurnal fluctuation (Figure 3 bottom).
[[nodiscard]] PatternSpec warmstorage_pattern(double base_gbps);

/// Ads-like: strong diurnal + weekly pattern with holiday bursts and growth.
[[nodiscard]] PatternSpec ads_pattern(double base_gbps);

/// Logging-like: steady with mild diurnal and steady growth.
[[nodiscard]] PatternSpec logging_pattern(double base_gbps);

}  // namespace netent::traffic
