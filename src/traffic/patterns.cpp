#include "traffic/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace netent::traffic {

TimeSeries generate_pattern(const PatternSpec& spec, double duration_seconds, double step_seconds,
                            Rng& rng) {
  NETENT_EXPECTS(spec.base_gbps >= 0.0);
  NETENT_EXPECTS(duration_seconds > 0.0 && step_seconds > 0.0);
  NETENT_EXPECTS(spec.spike_duty > 0.0 && spec.spike_duty <= 1.0);

  const auto n = static_cast<std::size_t>(duration_seconds / step_seconds);
  std::vector<double> values(n);

  std::vector<bool> holiday_lookup;
  if (!spec.holiday_days.empty()) {
    const int max_day = *std::max_element(spec.holiday_days.begin(), spec.holiday_days.end());
    holiday_lookup.assign(static_cast<std::size_t>(max_day) + 1, false);
    for (const int d : spec.holiday_days) {
      NETENT_EXPECTS(d >= 0);
      holiday_lookup[static_cast<std::size_t>(d)] = true;
    }
  }

  constexpr double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * step_seconds;
    const double day = t / 86400.0;
    const double hour = std::fmod(t, 86400.0) / 3600.0;

    double rate = spec.base_gbps;
    rate *= 1.0 + spec.trend_per_year * (day / 365.0);
    if (spec.diurnal_amplitude > 0.0) {
      rate *= 1.0 + spec.diurnal_amplitude *
                        std::cos(two_pi * (hour - spec.diurnal_peak_hour) / 24.0);
    }
    if (spec.weekly_amplitude > 0.0) {
      rate *= 1.0 + spec.weekly_amplitude * std::cos(two_pi * day / 7.0);
    }
    if (spec.spike_period_seconds > 0.0) {
      const double phase = std::fmod(t, spec.spike_period_seconds) / spec.spike_period_seconds;
      if (phase < spec.spike_duty) rate *= 1.0 + spec.spike_amplitude;
    }
    const auto day_idx = static_cast<std::size_t>(day);
    if (day_idx < holiday_lookup.size() && holiday_lookup[day_idx]) {
      rate *= 1.0 + spec.holiday_boost;
    }
    if (spec.noise_sigma > 0.0) {
      rate *= std::max(0.0, 1.0 + spec.noise_sigma * rng.normal());
    }
    values[i] = std::max(0.0, rate);
  }
  return TimeSeries(step_seconds, std::move(values));
}

PatternSpec coldstorage_pattern(double base_gbps) {
  PatternSpec spec;
  spec.base_gbps = base_gbps;
  spec.trend_per_year = 0.25;
  spec.diurnal_amplitude = 0.05;
  spec.spike_amplitude = 2.5;
  spec.spike_period_seconds = 4.0 * 3600.0;  // rack rotation every 4h
  spec.spike_duty = 0.15;
  spec.noise_sigma = 0.03;
  return spec;
}

PatternSpec warmstorage_pattern(double base_gbps) {
  PatternSpec spec;
  spec.base_gbps = base_gbps;
  spec.trend_per_year = 0.35;
  spec.diurnal_amplitude = 0.35;
  spec.diurnal_peak_hour = 19.0;
  spec.weekly_amplitude = 0.08;
  spec.noise_sigma = 0.02;
  return spec;
}

PatternSpec ads_pattern(double base_gbps) {
  PatternSpec spec;
  spec.base_gbps = base_gbps;
  spec.trend_per_year = 0.5;
  spec.diurnal_amplitude = 0.45;
  spec.diurnal_peak_hour = 20.0;
  spec.weekly_amplitude = 0.15;
  spec.holiday_boost = 0.4;
  spec.noise_sigma = 0.04;
  return spec;
}

PatternSpec logging_pattern(double base_gbps) {
  PatternSpec spec;
  spec.base_gbps = base_gbps;
  spec.trend_per_year = 0.3;
  spec.diurnal_amplitude = 0.15;
  spec.noise_sigma = 0.02;
  return spec;
}

}  // namespace netent::traffic
