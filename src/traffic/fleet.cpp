#include "traffic/fleet.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace netent::traffic {

namespace {

/// The dominant services of §2.1, with their characteristic patterns. The
/// storage family dominates, matching the paper's observation.
struct HeadService {
  const char* name;
  PatternSpec (*pattern)(double);
  QosClass main_class;
  QosClass side_class;
  double side_fraction;  ///< e.g. Warmstorage: data in B, control in A
  DailyAggregate aggregate;  ///< §4.1 per-service-type SLI input
};

constexpr double kNoSide = 0.0;

const HeadService kHeadServices[] = {
    {"Coldstorage", coldstorage_pattern, QosClass::c3_low, QosClass::c2_high, 0.02,
     DailyAggregate::max_avg_6h},
    {"Warmstorage", warmstorage_pattern, QosClass::c2_low, QosClass::c1_high, 0.03,
     DailyAggregate::max_avg_6h},
    {"Logging", logging_pattern, QosClass::c2_high, QosClass::c2_low, 0.10,
     DailyAggregate::max_avg_6h},
    {"Datawarehouse", logging_pattern, QosClass::c3_low, QosClass::c3_high, 0.15,
     DailyAggregate::max_avg_6h},
    {"MultiFeed", warmstorage_pattern, QosClass::c1_high, QosClass::c2_low, 0.05,
     DailyAggregate::p99},
    {"Everstore", warmstorage_pattern, QosClass::c2_low, QosClass::c2_high, 0.20,
     DailyAggregate::max_avg_6h},
    {"Ads", ads_pattern, QosClass::c1_low, QosClass::c1_high, 0.10, DailyAggregate::p99},
    {"Video", ads_pattern, QosClass::c2_high, QosClass::c3_low, 0.25, DailyAggregate::p99},
    {"Search", warmstorage_pattern, QosClass::c1_high, QosClass::c2_low, 0.10,
     DailyAggregate::p99},
    {"CDN-Fill", logging_pattern, QosClass::c3_high, QosClass::c4_low, 0.30,
     DailyAggregate::max},
};

std::vector<double> draw_region_weights(std::size_t region_count, std::size_t min_regions,
                                        double sigma, Rng& rng) {
  // Deployment footprint: a random subset of regions, at least min_regions.
  const std::size_t deployed =
      min_regions + rng.uniform_int(region_count - min_regions + 1);
  std::vector<std::size_t> order(region_count);
  for (std::size_t i = 0; i < region_count; ++i) order[i] = i;
  for (std::size_t i = region_count; i-- > 1;) {
    std::swap(order[i], order[rng.uniform_int(i + 1)]);
  }
  // Lognormal gravity weights on the deployed subset: concentrated shares,
  // reproducing the Figure 7 observation (top few regions dominate).
  std::vector<double> weights(region_count, 0.0);
  for (std::size_t i = 0; i < deployed; ++i) {
    weights[order[i]] = std::exp(sigma * rng.normal());
  }
  return weights;
}

}  // namespace

std::vector<ServiceProfile> generate_fleet(const FleetConfig& config, Rng& rng) {
  NETENT_EXPECTS(config.service_count >= config.high_touch_count);
  NETENT_EXPECTS(config.high_touch_count <= std::size(kHeadServices));
  NETENT_EXPECTS(config.region_count >= config.min_deploy_regions);
  NETENT_EXPECTS(config.total_gbps > 0.0);

  // Zipf shares over service ranks.
  std::vector<double> shares(config.service_count);
  double norm = 0.0;
  for (std::size_t r = 0; r < config.service_count; ++r) {
    shares[r] = 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_exponent);
    norm += shares[r];
  }
  for (double& s : shares) s *= config.total_gbps / norm;

  std::vector<ServiceProfile> fleet;
  fleet.reserve(config.service_count);
  for (std::size_t i = 0; i < config.service_count; ++i) {
    ServiceProfile svc;
    svc.id = NpgId(static_cast<std::uint32_t>(i));
    svc.high_touch = i < config.high_touch_count;

    if (i < std::size(kHeadServices)) {
      const HeadService& head = kHeadServices[i];
      svc.name = head.name;
      svc.pattern = head.pattern(shares[i]);
      svc.preferred_aggregate = head.aggregate;
      if (head.side_fraction > kNoSide) {
        svc.qos_mix = {{head.main_class, 1.0 - head.side_fraction},
                       {head.side_class, head.side_fraction}};
      } else {
        svc.qos_mix = {{head.main_class, 1.0}};
      }
    } else {
      svc.name = "svc" + std::to_string(i);
      // Tail services: random pattern family (with its matching SLI input)
      // and a random dominant class.
      switch (rng.uniform_int(4)) {
        case 0:
          svc.pattern = coldstorage_pattern(shares[i]);
          svc.preferred_aggregate = DailyAggregate::max_avg_6h;
          break;
        case 1:
          svc.pattern = warmstorage_pattern(shares[i]);
          svc.preferred_aggregate = DailyAggregate::max_avg_6h;
          break;
        case 2:
          svc.pattern = ads_pattern(shares[i]);
          svc.preferred_aggregate = DailyAggregate::p99;
          break;
        default:
          svc.pattern = logging_pattern(shares[i]);
          svc.preferred_aggregate = DailyAggregate::max_avg_6h;
          break;
      }
      const auto main_class = static_cast<QosClass>(rng.uniform_int(kQosClassCount));
      if (rng.bernoulli(0.3)) {
        const auto side_class = static_cast<QosClass>(rng.uniform_int(kQosClassCount));
        if (side_class != main_class) {
          const double side = rng.uniform(0.02, 0.2);
          svc.qos_mix = {{main_class, 1.0 - side}, {side_class, side}};
        } else {
          svc.qos_mix = {{main_class, 1.0}};
        }
      } else {
        svc.qos_mix = {{main_class, 1.0}};
      }
    }

    svc.src_weights = draw_region_weights(config.region_count, config.min_deploy_regions,
                                          config.deploy_sigma, rng);
    svc.dst_weights = draw_region_weights(config.region_count, config.min_deploy_regions,
                                          config.deploy_sigma, rng);
    fleet.push_back(std::move(svc));
  }
  return fleet;
}

double class_total_gbps(std::span<const ServiceProfile> fleet, QosClass qos) {
  double total = 0.0;
  for (const ServiceProfile& svc : fleet) total += svc.mean_rate_gbps() * svc.qos_fraction(qos);
  return total;
}

std::vector<std::pair<NpgId, double>> class_shares(std::span<const ServiceProfile> fleet,
                                                   QosClass qos) {
  const double total = class_total_gbps(fleet, qos);
  std::vector<std::pair<NpgId, double>> shares;
  if (total <= 0.0) return shares;
  for (const ServiceProfile& svc : fleet) {
    const double rate = svc.mean_rate_gbps() * svc.qos_fraction(qos);
    if (rate > 0.0) shares.emplace_back(svc.id, rate / total);
  }
  std::sort(shares.begin(), shares.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return shares;
}

}  // namespace netent::traffic
