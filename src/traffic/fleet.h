// Fleet generator: a synthetic population of services reproducing the
// paper's §2.1 service ontology — thousands of services, a handful of
// dominant (high-touch) consumers per QoS class, storage-heavy heads with
// distinct micro-patterns, and concentrated regional deployments.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "traffic/service.h"

namespace netent::traffic {

struct FleetConfig {
  std::size_t region_count = 16;
  std::size_t service_count = 1200;
  double total_gbps = 100000.0;   ///< O(100 Tbps) fleet aggregate (§1)
  double zipf_exponent = 1.1;     ///< service-size skew; yields <10 dominant services
  double deploy_sigma = 1.2;      ///< lognormal sigma for region gravity weights
  std::size_t min_deploy_regions = 3;  ///< minimum deployment footprint
  std::size_t high_touch_count = 8;    ///< the ~10 high-touch services (§4.3)
};

/// Generates the fleet. The first `high_touch_count` services are the named
/// dominant consumers (Coldstorage, Warmstorage, Logging, ...) with their
/// §2.1 patterns; the tail is thousands of small generic services.
[[nodiscard]] std::vector<ServiceProfile> generate_fleet(const FleetConfig& config, Rng& rng);

/// Total mean rate of the fleet within one QoS class.
[[nodiscard]] double class_total_gbps(std::span<const ServiceProfile> fleet, QosClass qos);

/// Per-service share of one class's traffic, sorted descending: the data
/// behind Figures 1-2.
[[nodiscard]] std::vector<std::pair<NpgId, double>> class_shares(
    std::span<const ServiceProfile> fleet, QosClass qos);

}  // namespace netent::traffic
