// Incident injection: reproduces the misbehaving-service events of §2.2.
// Incident 1 (service bug): a traffic spike that ramps to +50% of the
// predicted volume within three minutes. Incident 2 (new feature): a step
// surge of backbone traffic from one region, +10% over estimated peak.
#pragma once

#include "traffic/timeseries.h"

namespace netent::traffic {

/// Multiplies `series` by a ramp that rises linearly from 1.0 at
/// `start_seconds` to `1 + magnitude` over `ramp_seconds`, stays there for
/// `hold_seconds`, then returns to 1.0. Models the §2.2 video-client bug
/// (magnitude 0.5, ramp 180s).
void inject_bug_spike(TimeSeries& series, double start_seconds, double ramp_seconds,
                      double hold_seconds, double magnitude);

/// Adds a step of `extra_gbps` from `start_seconds` onward: the §2.2 caching
/// feature change that redirected edge fetches to backend data centers.
void inject_feature_step(TimeSeries& series, double start_seconds, double extra_gbps);

}  // namespace netent::traffic
