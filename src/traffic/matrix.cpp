#include "traffic/matrix.h"

#include "common/check.h"

namespace netent::traffic {

TrafficMatrix::TrafficMatrix(std::size_t region_count)
    : n_(region_count), cells_(region_count * region_count, 0.0) {
  NETENT_EXPECTS(region_count >= 2);
}

double& TrafficMatrix::at(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src.value() < n_ && dst.value() < n_);
  return cells_[src.value() * n_ + dst.value()];
}

double TrafficMatrix::at(RegionId src, RegionId dst) const {
  NETENT_EXPECTS(src.value() < n_ && dst.value() < n_);
  return cells_[src.value() * n_ + dst.value()];
}

Gbps TrafficMatrix::egress(RegionId src) const {
  NETENT_EXPECTS(src.value() < n_);
  double sum = 0.0;
  for (std::size_t d = 0; d < n_; ++d) sum += cells_[src.value() * n_ + d];
  return Gbps(sum);
}

Gbps TrafficMatrix::ingress(RegionId dst) const {
  NETENT_EXPECTS(dst.value() < n_);
  double sum = 0.0;
  for (std::size_t s = 0; s < n_; ++s) sum += cells_[s * n_ + dst.value()];
  return Gbps(sum);
}

Gbps TrafficMatrix::total() const {
  double sum = 0.0;
  for (double v : cells_) sum += v;
  return Gbps(sum);
}

TrafficMatrix& TrafficMatrix::operator+=(const TrafficMatrix& other) {
  NETENT_EXPECTS(other.n_ == n_);
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  return *this;
}

TrafficMatrix& TrafficMatrix::operator*=(double scale) {
  for (double& v : cells_) v *= scale;
  return *this;
}

std::vector<topology::Demand> TrafficMatrix::demands() const {
  std::vector<topology::Demand> out;
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      const double v = cells_[s * n_ + d];
      if (v > 0.0 && s != d) {
        out.push_back({RegionId(static_cast<std::uint32_t>(s)),
                       RegionId(static_cast<std::uint32_t>(d)), Gbps(v)});
      }
    }
  }
  return out;
}

}  // namespace netent::traffic
