#include "traffic/incident.h"

#include "common/check.h"

namespace netent::traffic {

void inject_bug_spike(TimeSeries& series, double start_seconds, double ramp_seconds,
                      double hold_seconds, double magnitude) {
  NETENT_EXPECTS(ramp_seconds > 0.0);
  NETENT_EXPECTS(magnitude >= 0.0);
  const double step = series.step_seconds();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) * step;
    if (t < start_seconds) continue;
    const double since = t - start_seconds;
    double factor = 1.0;
    if (since < ramp_seconds) {
      factor = 1.0 + magnitude * (since / ramp_seconds);
    } else if (since < ramp_seconds + hold_seconds) {
      factor = 1.0 + magnitude;
    }
    series[i] *= factor;
  }
}

void inject_feature_step(TimeSeries& series, double start_seconds, double extra_gbps) {
  NETENT_EXPECTS(extra_gbps >= 0.0);
  const double step = series.step_seconds();
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (static_cast<double>(i) * step >= start_seconds) series[i] += extra_gbps;
  }
}

}  // namespace netent::traffic
