// Region-to-region traffic matrix. The hose subsystem reasons about sets of
// these (representative TMs, hose-feasible samples); the enforcement drill
// aggregates per-service TMs into offered load.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "topology/routing.h"

namespace netent::traffic {

/// Dense n x n matrix of offered Gbps; diagonal is unused (kept zero).
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t region_count);

  [[nodiscard]] std::size_t region_count() const { return n_; }

  [[nodiscard]] double& at(RegionId src, RegionId dst);
  [[nodiscard]] double at(RegionId src, RegionId dst) const;

  /// Row sum: total egress of a region.
  [[nodiscard]] Gbps egress(RegionId src) const;
  /// Column sum: total ingress of a region.
  [[nodiscard]] Gbps ingress(RegionId dst) const;
  [[nodiscard]] Gbps total() const;

  TrafficMatrix& operator+=(const TrafficMatrix& other);
  TrafficMatrix& operator*=(double scale);

  /// Nonzero entries as routing demands (row-major order).
  [[nodiscard]] std::vector<topology::Demand> demands() const;

 private:
  std::size_t n_;
  std::vector<double> cells_;
};

}  // namespace netent::traffic
