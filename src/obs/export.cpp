#include "obs/export.h"

#include <cstdio>

#include "common/table.h"

namespace netent::obs {

namespace {

/// Round-trip double formatting, locale-independent for our content
/// (metric values never need locale-specific separators).
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Metric names are dotted identifiers; escape defensively anyway.
std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string json = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& counter = snapshot.counters[i];
    if (i != 0) json += ',';
    json += '"' + escape(counter.name) + "\":" + std::to_string(counter.value);
  }
  json += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& gauge = snapshot.gauges[i];
    if (i != 0) json += ',';
    json += '"' + escape(gauge.name) + "\":" + format_double(gauge.value);
  }
  json += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& histogram = snapshot.histograms[i];
    if (i != 0) json += ',';
    json += '"' + escape(histogram.name) + "\":{\"bounds\":[";
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b != 0) json += ',';
      json += format_double(histogram.bounds[b]);
    }
    json += "],\"counts\":[";
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) json += ',';
      json += std::to_string(histogram.counts[b]);
    }
    json += "],\"count\":" + std::to_string(histogram.total_count) +
            ",\"sum\":" + format_double(histogram.sum) + '}';
  }
  json += "}}";
  return json;
}

void print_text(const Snapshot& snapshot, std::ostream& os) {
  if (!snapshot.counters.empty()) {
    Table table({"counter", "value"}, 0);
    for (const CounterSnapshot& counter : snapshot.counters) {
      table.add_row({counter.name, static_cast<double>(counter.value)});
    }
    table.print(os);
    os << '\n';
  }
  if (!snapshot.gauges.empty()) {
    Table table({"gauge", "value"}, 4);
    for (const GaugeSnapshot& gauge : snapshot.gauges) {
      table.add_row({gauge.name, gauge.value});
    }
    table.print(os);
    os << '\n';
  }
  if (!snapshot.histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p99"}, 6);
    for (const HistogramSnapshot& histogram : snapshot.histograms) {
      table.add_row({histogram.name, static_cast<double>(histogram.total_count),
                     histogram.mean(),
                     histogram.total_count ? histogram.quantile(0.5) : 0.0,
                     histogram.total_count ? histogram.quantile(0.99) : 0.0});
    }
    table.print(os);
  }
}

void dump_global_json(std::ostream& os, bool deterministic_only) {
  const Snapshot snapshot = Registry::global().snapshot();
  os << to_json(deterministic_only ? snapshot.deterministic_only() : snapshot) << '\n';
}

}  // namespace netent::obs
