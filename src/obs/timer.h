// RAII scoped-timer spans. A span measures the wall-clock time between its
// construction and destruction and records it (in seconds) into a timer
// histogram. RAII is the point: every exit path of the instrumented scope —
// early returns, exceptions propagating out of a placement, the hysteresis
// short-circuit in the agent — is measured identically, with no paired
// begin/end calls to keep in sync.
//
// With NETENT_OBS=OFF the span is an empty struct: no clock reads, no
// record, same call sites.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace netent::obs {

#if NETENT_OBS_ENABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { sink_->record(elapsed_seconds()); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

#else

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  [[nodiscard]] double elapsed_seconds() const noexcept { return 0.0; }
};

#endif  // NETENT_OBS_ENABLED

}  // namespace netent::obs
