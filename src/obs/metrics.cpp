#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace netent::obs {

// --- Snapshot helpers (compiled in every build) ----------------------------

double HistogramSnapshot::mean() const {
  return total_count == 0 ? 0.0 : sum / static_cast<double>(total_count);
}

double HistogramSnapshot::quantile(double q) const {
  NETENT_EXPECTS(q > 0.0 && q <= 1.0);
  if (total_count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      return i < bounds.size() ? bounds[i] : (bounds.empty() ? 0.0 : bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Snapshot Snapshot::deterministic_only() const {
  Snapshot filtered;
  filtered.counters = counters;  // counters are always deterministic-eligible
  for (const GaugeSnapshot& gauge : gauges) {
    if (!gauge.timing) filtered.gauges.push_back(gauge);
  }
  for (const HistogramSnapshot& histogram : histograms) {
    if (!histogram.timing) filtered.histograms.push_back(histogram);
  }
  return filtered;
}

#if NETENT_OBS_ENABLED

namespace detail {

std::size_t assign_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
}

}  // namespace detail

// --- Histogram -------------------------------------------------------------

namespace {
/// Default duration buckets for timer histograms, in seconds: 100ns..10s in
/// a 1-3-10 ladder. Covers everything from a counter bump to a full sweep.
constexpr double kTimerBoundsSeconds[] = {1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
                                          1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0};
}  // namespace

Histogram::Histogram(std::vector<double> bounds, bool timing)
    : bounds_(std::move(bounds)), timing_(timing) {
  NETENT_EXPECTS(!bounds_.empty());
  NETENT_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  shards_.reserve(kShardCount);
  for (std::size_t s = 0; s < kShardCount; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::record(double value) noexcept {
  const double clamped = value < 0.0 ? 0.0 : value;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), clamped) - bounds_.begin());
  Shard& shard = *shards_[this_thread_shard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum_micro.fetch_add(static_cast<std::uint64_t>(std::llround(clamped * 1e6)),
                            std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  // Derived from the bucket counts: record() pays for two fetch_adds, not
  // three, and reads are the rare path.
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& count : shard->counts) total += count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  std::uint64_t micro = 0;
  for (const auto& shard : shards_) micro += shard->sum_micro.load(std::memory_order_relaxed);
  return static_cast<double>(micro) / 1e6;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::reset() noexcept {
  for (const auto& shard : shards_) {
    for (auto& count : shard->counts) count.store(0, std::memory_order_relaxed);
    shard->sum_micro.store(0, std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, bool timing) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto gauge = std::unique_ptr<Gauge>(new Gauge());
    gauge->timing_ = timing;
    it = gauges_.emplace(std::string(name), std::move(gauge)).first;
  }
  NETENT_EXPECTS(it->second->timing_ == timing);
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> bounds,
                               bool timing) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto histogram = std::unique_ptr<Histogram>(
        new Histogram(std::vector<double>(bounds.begin(), bounds.end()), timing));
    it = histograms_.emplace(std::string(name), std::move(histogram)).first;
  }
  NETENT_EXPECTS(it->second->timing_ == timing);
  NETENT_EXPECTS(std::equal(bounds.begin(), bounds.end(), it->second->bounds_.begin(),
                            it->second->bounds_.end()));
  return *it->second;
}

Histogram& Registry::timer_histogram(std::string_view name) {
  return histogram(name, kTimerBoundsSeconds, /*timing=*/true);
}

Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value(), gauge->timing()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.timing = histogram->timing();
    hs.bounds.assign(histogram->bounds().begin(), histogram->bounds().end());
    hs.counts = histogram->bucket_counts();
    hs.total_count = histogram->count();
    hs.sum = histogram->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

#endif  // NETENT_OBS_ENABLED

}  // namespace netent::obs
