// Low-overhead metrics substrate (`netent::obs`): monotonic counters, gauges
// and fixed-bucket histograms behind a process-global named registry, plus
// snapshot/export for the figure benches and tests.
//
// Design rules (DESIGN.md "Observability"):
//  * Hot-path writes are per-thread sharded: every metric owns kShardCount
//    cache-line-padded slots and a thread writes only "its" slot with a
//    relaxed atomic, so the risk-sweep / drill worker threads never contend.
//    Reads merge the shards (merge-on-read); integer merges are
//    order-independent, so merged values are exact and bit-identical for any
//    thread count.
//  * Everything deterministic is integer-valued. Counters are uint64;
//    histogram sums are accumulated in integer micro-units. Gauges hold the
//    last-set double. Wall-clock-derived metrics (timer histograms, pool
//    utilization) are flagged `timing` and excluded from
//    Snapshot::deterministic_only(), which the serial-vs-parallel golden
//    tests compare.
//  * Compile-time removable: configuring with -DNETENT_OBS=OFF swaps every
//    class below for an empty stub with the identical API, so unchanged call
//    sites compile to no-ops (tests/test_obs_overhead.cpp pins this).
//
// Handles returned by the registry are stable for the process lifetime;
// instrumented code looks a metric up once (function-local static) and keeps
// the reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef NETENT_OBS_ENABLED
#define NETENT_OBS_ENABLED 1
#endif

namespace netent::obs {

/// True when the instrumentation is compiled in (NETENT_OBS=ON).
inline constexpr bool kEnabled = NETENT_OBS_ENABLED != 0;

// ---------------------------------------------------------------------------
// Snapshots: merged, point-in-time values, sorted by metric name. These are
// real data in every build (an OFF build just produces empty snapshots), so
// exporters and tests compile unconditionally.
// ---------------------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  bool timing = false;  ///< wall-clock/schedule dependent; not deterministic
};

struct HistogramSnapshot {
  std::string name;
  bool timing = false;
  std::vector<double> bounds;          ///< upper bounds, ascending
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (last = overflow)
  std::uint64_t total_count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const;
  /// Upper bound of the bucket where the cumulative count reaches q (in
  /// (0, 1]); the overflow bucket reports the largest finite bound.
  [[nodiscard]] double quantile(double q) const;
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Everything except timing-flagged metrics: the subset that must be
  /// bit-identical between serial and parallel runs of the same seed.
  [[nodiscard]] Snapshot deterministic_only() const;
};

#if NETENT_OBS_ENABLED

/// Shards per metric. Threads are assigned a shard round-robin on first
/// metric touch; more threads than shards just share (still exact, only
/// contended).
inline constexpr std::size_t kShardCount = 16;

namespace detail {
/// Round-robin shard assignment, taken once per thread (out of line: cold).
[[nodiscard]] std::size_t assign_shard() noexcept;
}  // namespace detail

/// This thread's shard index (stable for the thread's lifetime). The cached
/// slot is constant-initialized (0 = unassigned, else shard + 1) so the hot
/// path is a plain TLS load with no init-guard or wrapper call.
[[nodiscard]] inline std::size_t this_thread_shard() noexcept {
  thread_local std::size_t assigned = 0;
  std::size_t slot = assigned;
  if (slot == 0) [[unlikely]] {
    slot = detail::assign_shard() + 1;
    assigned = slot;
  }
  return slot - 1;
}

/// Monotonic counter. add() is one relaxed fetch_add on a thread-private
/// cache line; value() merges the shards (exact: integer sum).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[this_thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShardCount> shards_{};
};

/// Last-written value (not sharded: set/read are both rare).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool timing() const noexcept { return timing_; }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
  bool timing_ = false;
};

/// Fixed-bucket histogram with per-thread sharding. record() clamps the
/// value to >= 0, bumps the shard's bucket count and adds the value to the
/// shard's sum in integer micro-units, so merged counts AND sums are exact
/// and order-independent.
class Histogram {
 public:
  void record(double value) noexcept;

  [[nodiscard]] std::span<const double> bounds() const noexcept { return bounds_; }
  [[nodiscard]] bool timing() const noexcept { return timing_; }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Merged per-bucket counts (bounds().size() + 1 entries).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  friend class Registry;
  Histogram(std::vector<double> bounds, bool timing);

  struct Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;  // total is their sum
    alignas(64) std::atomic<std::uint64_t> sum_micro{0};
  };

  std::vector<double> bounds_;  // ascending upper bounds
  bool timing_;
  std::vector<std::unique_ptr<Shard>> shards_;  // kShardCount, heap for padding
};

/// Name -> metric registry. Lookup is mutex + map and intended to happen
/// once per call site (function-local static handle); the handles themselves
/// are lock-free. Metric objects live until process exit; reset() zeroes
/// values but keeps registrations.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name, bool timing = false);
  /// `bounds` are ascending upper bounds; re-registration with different
  /// bounds is a contract violation.
  [[nodiscard]] Histogram& histogram(std::string_view name, std::span<const double> bounds,
                                     bool timing = false);
  /// Histogram with the default duration buckets (100ns..10s), timing-flagged.
  [[nodiscard]] Histogram& timer_histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  [[nodiscard]] static constexpr bool enabled() { return true; }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // NETENT_OBS_ENABLED == 0: identical API, empty bodies. Call sites
       // compile unchanged and the optimizer erases them.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  [[nodiscard]] bool timing() const noexcept { return false; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void record(double) noexcept {}
  [[nodiscard]] std::span<const double> bounds() const noexcept { return {}; }
  [[nodiscard]] bool timing() const noexcept { return false; }
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double sum() const noexcept { return 0.0; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const { return {}; }
  void reset() noexcept {}
};

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry registry;
    return registry;
  }
  [[nodiscard]] Counter& counter(std::string_view) {
    static Counter stub;
    return stub;
  }
  [[nodiscard]] Gauge& gauge(std::string_view, bool = false) {
    static Gauge stub;
    return stub;
  }
  [[nodiscard]] Histogram& histogram(std::string_view, std::span<const double>, bool = false) {
    static Histogram stub;
    return stub;
  }
  [[nodiscard]] Histogram& timer_histogram(std::string_view) {
    static Histogram stub;
    return stub;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  void reset() {}
  [[nodiscard]] static constexpr bool enabled() { return false; }
};

#endif  // NETENT_OBS_ENABLED

}  // namespace netent::obs
