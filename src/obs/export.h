// Snapshot exporters: a stable JSON encoding (sorted by metric name, fixed
// number formatting — two exports of the same snapshot are bit-identical,
// which the golden determinism tests rely on) and an aligned text table for
// humans. Both consume Snapshot, so they work identically on the global
// registry or a filtered subset.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace netent::obs {

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
/// keys in snapshot (i.e. name-sorted) order. Doubles are emitted with
/// round-trip precision ("%.17g"), so equal values encode identically.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Aligned text tables (one per metric kind) via common/table.h; histograms
/// report count, mean and approximate p50/p99 from the bucket boundaries.
void print_text(const Snapshot& snapshot, std::ostream& os);

/// Convenience: serialize the global registry. `deterministic_only` drops
/// timing-flagged metrics (see Snapshot::deterministic_only).
void dump_global_json(std::ostream& os, bool deterministic_only = false);

}  // namespace netent::obs
