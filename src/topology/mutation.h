// Topology lifecycle: the mutation vocabulary and the versioned log.
//
// The paper's agility story (§5, §7) assumes the backbone itself keeps
// changing while entitlements are in force — fiber builds, retirements,
// capacity augments, maintenance drains, correlated SRLG storms. Every such
// change is expressed as one Mutation applied to the Topology, which records
// a MutationRecord in its MutationLog and bumps its epoch counter. Consumers
// that cache topology-derived state (Router path caches, SRLG indexes, the
// admission plane's residuals) remember the epoch they last synced to and
// catch up by reading `log.since(epoch)` — the contract that makes
// incremental re-warm provably equivalent to a from-scratch rebuild.
//
// Two mutation classes matter downstream:
//  * STRUCTURAL (add_fiber, retire_fiber): the set of usable links changes,
//    so k-shortest-path sets can change and path caches must re-warm the
//    affected (src, dst) pairs.
//  * CAPACITY-ONLY (resize_fiber, drain/undrain_region, strike/repair_srlgs):
//    path costs are hop counts, so candidate path sets are untouched; only
//    per-link effective capacities move.
// Links are never physically removed — LinkIds stay dense indices forever; a
// retired fiber keeps its slot with zero effective capacity and is excluded
// from new path computation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace netent::topology {

enum class MutationKind : std::uint8_t {
  add_fiber,       ///< new bidirectional fiber (optionally sharing a conduit)
  retire_fiber,    ///< fiber removed from service (capacity 0, unusable for new paths)
  resize_fiber,    ///< capacity augment / reduction, both directions
  drain_region,    ///< maintenance: all links touching the region carry 0
  undrain_region,  ///< maintenance over
  strike_srlgs,    ///< correlated storm: the listed SRLGs are cut
  repair_srlgs,    ///< storm over: the listed SRLGs restored
};

/// One requested topology change, the uniform argument of Topology::apply().
/// Only the fields of the mutation's kind are read; the rest are ignored.
struct Mutation {
  MutationKind kind = MutationKind::resize_fiber;
  /// Caller-supplied event time (simulated hours); log bookkeeping only.
  double when_hours = 0.0;
  // add_fiber:
  RegionId region_a;                 ///< also the drain/undrain target
  RegionId region_b;
  Gbps capacity{0.0};                ///< add/resize: per-direction capacity
  double mtbf_hours = 8760.0;        ///< add (ignored when `conduit` is set)
  double mttr_hours = 12.0;          ///< add (ignored when `conduit` is set)
  /// add_fiber: lay the new fiber in this existing link's conduit (same
  /// SRLG, same reliability — a single cut takes out all co-conduit fibers).
  std::optional<LinkId> conduit;
  // retire_fiber / resize_fiber: either direction of the target fiber.
  LinkId link;
  // strike_srlgs / repair_srlgs:
  std::vector<SrlgId> srlgs;
};

/// One applied mutation as the log stores it. `epoch` is the topology epoch
/// AFTER applying (epochs increase by exactly 1 per record, starting at 1).
struct MutationRecord {
  MutationKind kind = MutationKind::resize_fiber;
  std::uint64_t epoch = 0;
  double when_hours = 0.0;
  LinkId link;                ///< add/retire/resize: forward-direction link id
  Gbps capacity{0.0};         ///< add/resize: the new per-direction capacity
  RegionId region;            ///< drain/undrain
  std::vector<SrlgId> srlgs;  ///< strike/repair (sorted, deduped)

  /// True when the record can change k-shortest-path sets (add/retire);
  /// capacity-only records never do — path costs are hop counts.
  [[nodiscard]] bool structural() const {
    return kind == MutationKind::add_fiber || kind == MutationKind::retire_fiber;
  }
};

/// Append-only, time-stamped record of every mutation a Topology underwent
/// (including build-phase add_fiber calls). Records carry consecutive
/// epochs, so `since(e)` is an O(1) subspan, not a search.
class MutationLog {
 public:
  [[nodiscard]] std::span<const MutationRecord> records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Records applied after the given epoch (i.e. with record.epoch > epoch).
  [[nodiscard]] std::span<const MutationRecord> since(std::uint64_t epoch) const {
    if (epoch >= records_.size()) return {};
    return std::span<const MutationRecord>(records_).subspan(epoch);
  }

 private:
  friend class Topology;
  std::vector<MutationRecord> records_;
};

}  // namespace netent::topology
