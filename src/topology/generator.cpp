#include "topology/generator.h"

#include <cmath>
#include <string>

#include "common/check.h"

namespace netent::topology {

Topology generate_backbone(const GeneratorConfig& config, Rng& rng) {
  NETENT_EXPECTS(config.region_count >= 3);
  NETENT_EXPECTS(config.dc_fraction >= 0.0 && config.dc_fraction <= 1.0);
  NETENT_EXPECTS(config.max_parallel_fibers >= 1);

  Topology topo;
  const auto dc_count = static_cast<std::size_t>(
      std::round(config.dc_fraction * static_cast<double>(config.region_count)));
  for (std::size_t i = 0; i < config.region_count; ++i) {
    const bool is_dc = i < dc_count;
    topo.add_region((is_dc ? "dc" : "pop") + std::to_string(i),
                    is_dc ? RegionKind::data_center : RegionKind::pop);
  }

  const auto draw_capacity = [&](bool dc_to_dc) {
    // Lognormal heterogeneity; DC-DC adjacencies are provisioned fatter.
    const double mult = std::exp(config.capacity_sigma * rng.normal());
    const double dc_boost = dc_to_dc ? 1.5 : 1.0;
    return Gbps(config.base_capacity.value() * mult * dc_boost);
  };
  const auto draw_mtbf = [&] {
    return rng.uniform(config.mtbf_hours_min, config.mtbf_hours_max);
  };
  const auto draw_mttr = [&] {
    return rng.uniform(config.mttr_hours_min, config.mttr_hours_max);
  };
  const auto add_adjacency = [&](RegionId a, RegionId b) {
    const bool dc_to_dc = topo.region(a).kind == RegionKind::data_center &&
                          topo.region(b).kind == RegionKind::data_center;
    // Fat adjacencies get parallel fibers; each extra fiber independently
    // either gets its own SRLG or shares the first fiber's conduit.
    const std::size_t fibers = 1 + rng.uniform_int(config.max_parallel_fibers);
    const LinkId first = topo.add_fiber(a, b, draw_capacity(dc_to_dc), draw_mtbf(), draw_mttr());
    for (std::size_t f = 1; f < fibers; ++f) {
      if (rng.bernoulli(config.shared_conduit_probability)) {
        topo.add_fiber_in_conduit(a, b, draw_capacity(dc_to_dc), first);
      } else {
        topo.add_fiber(a, b, draw_capacity(dc_to_dc), draw_mtbf(), draw_mttr());
      }
    }
  };

  // Continental ring: guarantees biconnectivity of the region graph.
  for (std::size_t i = 0; i < config.region_count; ++i) {
    add_adjacency(RegionId(static_cast<std::uint32_t>(i)),
                  RegionId(static_cast<std::uint32_t>((i + 1) % config.region_count)));
  }
  // Express chords between non-adjacent pairs.
  for (std::size_t i = 0; i < config.region_count; ++i) {
    for (std::size_t j = i + 2; j < config.region_count; ++j) {
      if (i == 0 && j == config.region_count - 1) continue;  // ring edge
      if (rng.bernoulli(config.chord_probability)) {
        add_adjacency(RegionId(static_cast<std::uint32_t>(i)),
                      RegionId(static_cast<std::uint32_t>(j)));
      }
    }
  }

  NETENT_ENSURES(topo.link_count() >= 2 * config.region_count);
  return topo;
}

Topology figure6_topology() {
  Topology topo;
  const RegionId a = topo.add_region("A", RegionKind::data_center);
  const RegionId b = topo.add_region("B", RegionKind::data_center);
  const RegionId c = topo.add_region("C", RegionKind::data_center);
  const RegionId d = topo.add_region("D", RegionKind::data_center);
  const RegionId e = topo.add_region("E", RegionKind::data_center);
  // Full mesh from A plus a ring among B..E, generous capacity so the worked
  // example is demand-limited rather than capacity-limited.
  const Gbps cap(1000);
  const double mtbf = 10000.0;
  const double mttr = 12.0;
  topo.add_fiber(a, b, cap, mtbf, mttr);
  topo.add_fiber(a, c, cap, mtbf, mttr);
  topo.add_fiber(a, d, cap, mtbf, mttr);
  topo.add_fiber(a, e, cap, mtbf, mttr);
  topo.add_fiber(b, c, cap, mtbf, mttr);
  topo.add_fiber(c, d, cap, mtbf, mttr);
  topo.add_fiber(d, e, cap, mtbf, mttr);
  topo.add_fiber(e, b, cap, mtbf, mttr);
  return topo;
}

}  // namespace netent::topology
