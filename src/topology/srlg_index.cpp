#include "topology/srlg_index.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

SrlgIndex::SrlgIndex(const Topology& topo) : links_by_srlg_(topo.srlg_count()) {
  for (const Link& link : topo.links()) {
    NETENT_EXPECTS(link.srlg.value() < links_by_srlg_.size());
    links_by_srlg_[link.srlg.value()].push_back(link.id);
  }
  links_indexed_ = topo.link_count();
  // links() iterates in ascending LinkId order, so each list is sorted.
}

void SrlgIndex::resync(const Topology& topo) {
  NETENT_EXPECTS(topo.link_count() >= links_indexed_);
  if (topo.srlg_count() > links_by_srlg_.size()) links_by_srlg_.resize(topo.srlg_count());
  for (std::size_t i = links_indexed_; i < topo.link_count(); ++i) {
    const Link& link = topo.link(LinkId(static_cast<std::uint32_t>(i)));
    NETENT_EXPECTS(link.srlg.value() < links_by_srlg_.size());
    links_by_srlg_[link.srlg.value()].push_back(link.id);
  }
  links_indexed_ = topo.link_count();
}

std::span<const LinkId> SrlgIndex::links_of(SrlgId srlg) const {
  NETENT_EXPECTS(srlg.value() < links_by_srlg_.size());
  return links_by_srlg_[srlg.value()];
}

std::vector<SrlgId> path_srlgs(const Topology& topo, const Path& path) {
  std::vector<SrlgId> srlgs;
  srlgs.reserve(path.links.size());
  for (const LinkId lid : path.links) srlgs.push_back(topo.link(lid).srlg);
  std::sort(srlgs.begin(), srlgs.end(),
            [](SrlgId a, SrlgId b) { return a.value() < b.value(); });
  srlgs.erase(std::unique(srlgs.begin(), srlgs.end()), srlgs.end());
  return srlgs;
}

}  // namespace netent::topology
