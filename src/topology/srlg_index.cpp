#include "topology/srlg_index.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

SrlgIndex::SrlgIndex(const Topology& topo) : links_by_srlg_(topo.srlg_count()) {
  for (const Link& link : topo.links()) {
    NETENT_EXPECTS(link.srlg.value() < links_by_srlg_.size());
    links_by_srlg_[link.srlg.value()].push_back(link.id);
  }
  // links() iterates in ascending LinkId order, so each list is sorted.
}

std::span<const LinkId> SrlgIndex::links_of(SrlgId srlg) const {
  NETENT_EXPECTS(srlg.value() < links_by_srlg_.size());
  return links_by_srlg_[srlg.value()];
}

std::vector<SrlgId> path_srlgs(const Topology& topo, const Path& path) {
  std::vector<SrlgId> srlgs;
  srlgs.reserve(path.links.size());
  for (const LinkId lid : path.links) srlgs.push_back(topo.link(lid).srlg);
  std::sort(srlgs.begin(), srlgs.end(),
            [](SrlgId a, SrlgId b) { return a.value() < b.value(); });
  srlgs.erase(std::unique(srlgs.begin(), srlgs.end()), srlgs.end());
  return srlgs;
}

}  // namespace netent::topology
