#include "topology/topology.h"

#include "common/check.h"

namespace netent::topology {

double link_unavailability(const Link& link) {
  return link.mttr_hours / (link.mtbf_hours + link.mttr_hours);
}

RegionId Topology::add_region(std::string name, RegionKind kind) {
  NETENT_EXPECTS(!name.empty());
  const RegionId id(static_cast<std::uint32_t>(regions_.size()));
  regions_.push_back(Region{id, std::move(name), kind});
  out_links_.emplace_back();
  return id;
}

LinkId Topology::add_fiber(RegionId a, RegionId b, Gbps capacity_per_direction, double mtbf_hours,
                           double mttr_hours) {
  NETENT_EXPECTS(a.value() < regions_.size());
  NETENT_EXPECTS(b.value() < regions_.size());
  NETENT_EXPECTS(a != b);
  NETENT_EXPECTS(capacity_per_direction > Gbps(0));
  NETENT_EXPECTS(mtbf_hours > 0.0 && mttr_hours > 0.0);

  const SrlgId srlg(static_cast<std::uint32_t>(srlg_count_++));
  const LinkId fwd(static_cast<std::uint32_t>(links_.size()));
  const LinkId rev(static_cast<std::uint32_t>(links_.size() + 1));
  links_.push_back(Link{fwd, a, b, srlg, rev, capacity_per_direction, mtbf_hours, mttr_hours});
  links_.push_back(Link{rev, b, a, srlg, fwd, capacity_per_direction, mtbf_hours, mttr_hours});
  out_links_[a.value()].push_back(fwd);
  out_links_[b.value()].push_back(rev);
  return fwd;
}

LinkId Topology::add_fiber_in_conduit(RegionId a, RegionId b, Gbps capacity_per_direction,
                                      LinkId existing) {
  NETENT_EXPECTS(a.value() < regions_.size());
  NETENT_EXPECTS(b.value() < regions_.size());
  NETENT_EXPECTS(a != b);
  NETENT_EXPECTS(capacity_per_direction > Gbps(0));
  NETENT_EXPECTS(existing.value() < links_.size());

  // Copy, not reference: the push_backs below may reallocate links_.
  const Link conduit_peer = links_[existing.value()];
  const LinkId fwd(static_cast<std::uint32_t>(links_.size()));
  const LinkId rev(static_cast<std::uint32_t>(links_.size() + 1));
  links_.push_back(Link{fwd, a, b, conduit_peer.srlg, rev, capacity_per_direction,
                        conduit_peer.mtbf_hours, conduit_peer.mttr_hours});
  links_.push_back(Link{rev, b, a, conduit_peer.srlg, fwd, capacity_per_direction,
                        conduit_peer.mtbf_hours, conduit_peer.mttr_hours});
  out_links_[a.value()].push_back(fwd);
  out_links_[b.value()].push_back(rev);
  return fwd;
}

const Region& Topology::region(RegionId id) const {
  NETENT_EXPECTS(id.value() < regions_.size());
  return regions_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  NETENT_EXPECTS(id.value() < links_.size());
  return links_[id.value()];
}

std::span<const LinkId> Topology::out_links(RegionId id) const {
  NETENT_EXPECTS(id.value() < out_links_.size());
  return out_links_[id.value()];
}

std::optional<RegionId> Topology::find_region(const std::string& name) const {
  for (const auto& region : regions_) {
    if (region.name == name) return region.id;
  }
  return std::nullopt;
}

Gbps Topology::total_capacity() const {
  Gbps total(0);
  for (const auto& link : links_) total += link.capacity;
  return total;
}

}  // namespace netent::topology
