#include "topology/topology.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

double link_unavailability(const Link& link) {
  // Degenerate-input convention (see the header): instant repair wins, then
  // instant failure; the ratio is only evaluated with both inputs positive,
  // so it can never produce NaN or inf.
  if (link.mttr_hours <= 0.0) return 0.0;
  if (link.mtbf_hours <= 0.0) return 1.0;
  return link.mttr_hours / (link.mtbf_hours + link.mttr_hours);
}

RegionId Topology::add_region(std::string name, RegionKind kind) {
  NETENT_EXPECTS(!name.empty());
  const RegionId id(static_cast<std::uint32_t>(regions_.size()));
  regions_.push_back(Region{id, std::move(name), kind});
  out_links_.emplace_back();
  drained_.push_back(0);
  return id;
}

LinkId Topology::push_fiber(RegionId a, RegionId b, Gbps capacity, SrlgId srlg, double mtbf_hours,
                            double mttr_hours) {
  const LinkId fwd(static_cast<std::uint32_t>(links_.size()));
  const LinkId rev(static_cast<std::uint32_t>(links_.size() + 1));
  links_.push_back(Link{fwd, a, b, srlg, rev, capacity, mtbf_hours, mttr_hours});
  links_.push_back(Link{rev, b, a, srlg, fwd, capacity, mtbf_hours, mttr_hours});
  out_links_[a.value()].push_back(fwd);
  out_links_[b.value()].push_back(rev);
  retired_.push_back(0);
  retired_.push_back(0);
  if (srlg.value() >= struck_.size()) struck_.resize(srlg.value() + 1, 0);
  return fwd;
}

void Topology::record(MutationRecord rec) {
  rec.epoch = ++epoch_;
  log_.records_.push_back(std::move(rec));
}

LinkId Topology::add_fiber(RegionId a, RegionId b, Gbps capacity_per_direction, double mtbf_hours,
                           double mttr_hours, double when_hours) {
  NETENT_EXPECTS(a.value() < regions_.size());
  NETENT_EXPECTS(b.value() < regions_.size());
  NETENT_EXPECTS(a != b);
  NETENT_EXPECTS(capacity_per_direction > Gbps(0));
  NETENT_EXPECTS(mtbf_hours >= 0.0 && mttr_hours >= 0.0);

  const SrlgId srlg(static_cast<std::uint32_t>(srlg_count_++));
  const LinkId fwd = push_fiber(a, b, capacity_per_direction, srlg, mtbf_hours, mttr_hours);
  record(MutationRecord{MutationKind::add_fiber, 0, when_hours, fwd, capacity_per_direction,
                        RegionId(0), {}});
  return fwd;
}

LinkId Topology::add_fiber_in_conduit(RegionId a, RegionId b, Gbps capacity_per_direction,
                                      LinkId existing, double when_hours) {
  NETENT_EXPECTS(a.value() < regions_.size());
  NETENT_EXPECTS(b.value() < regions_.size());
  NETENT_EXPECTS(a != b);
  NETENT_EXPECTS(capacity_per_direction > Gbps(0));
  NETENT_EXPECTS(existing.value() < links_.size());
  NETENT_EXPECTS(!link_retired(existing));

  // Copy, not reference: the push_backs below may reallocate links_.
  const Link conduit_peer = links_[existing.value()];
  const LinkId fwd = push_fiber(a, b, capacity_per_direction, conduit_peer.srlg,
                                conduit_peer.mtbf_hours, conduit_peer.mttr_hours);
  record(MutationRecord{MutationKind::add_fiber, 0, when_hours, fwd, capacity_per_direction,
                        RegionId(0), {}});
  return fwd;
}

void Topology::retire_fiber(LinkId fiber, double when_hours) {
  NETENT_EXPECTS(fiber.value() < links_.size());
  NETENT_EXPECTS(!link_retired(fiber));
  const Link& l = links_[fiber.value()];
  // Normalize to the forward direction so the log names fibers canonically.
  const LinkId fwd = l.id.value() < l.reverse.value() ? l.id : l.reverse;
  retired_[fwd.value()] = 1;
  retired_[links_[fwd.value()].reverse.value()] = 1;
  record(MutationRecord{MutationKind::retire_fiber, 0, when_hours, fwd, Gbps(0), RegionId(0), {}});
}

void Topology::resize_fiber(LinkId fiber, Gbps capacity_per_direction, double when_hours) {
  NETENT_EXPECTS(fiber.value() < links_.size());
  NETENT_EXPECTS(!link_retired(fiber));
  NETENT_EXPECTS(capacity_per_direction > Gbps(0));
  Link& l = links_[fiber.value()];
  const LinkId fwd = l.id.value() < l.reverse.value() ? l.id : l.reverse;
  links_[fwd.value()].capacity = capacity_per_direction;
  links_[links_[fwd.value()].reverse.value()].capacity = capacity_per_direction;
  record(MutationRecord{MutationKind::resize_fiber, 0, when_hours, fwd, capacity_per_direction,
                        RegionId(0), {}});
}

void Topology::drain_region(RegionId region, double when_hours) {
  NETENT_EXPECTS(region.value() < regions_.size());
  NETENT_EXPECTS(!region_drained(region));
  drained_[region.value()] = 1;
  record(
      MutationRecord{MutationKind::drain_region, 0, when_hours, LinkId(0), Gbps(0), region, {}});
}

void Topology::undrain_region(RegionId region, double when_hours) {
  NETENT_EXPECTS(region.value() < regions_.size());
  NETENT_EXPECTS(region_drained(region));
  drained_[region.value()] = 0;
  record(
      MutationRecord{MutationKind::undrain_region, 0, when_hours, LinkId(0), Gbps(0), region, {}});
}

void Topology::strike_srlgs(std::vector<SrlgId> srlgs, double when_hours) {
  std::sort(srlgs.begin(), srlgs.end(),
            [](SrlgId a, SrlgId b) { return a.value() < b.value(); });
  srlgs.erase(std::unique(srlgs.begin(), srlgs.end()), srlgs.end());
  NETENT_EXPECTS(!srlgs.empty());
  for (const SrlgId s : srlgs) {
    NETENT_EXPECTS(s.value() < srlg_count_);
    NETENT_EXPECTS(!srlg_struck(s));
    struck_[s.value()] = 1;
  }
  record(MutationRecord{MutationKind::strike_srlgs, 0, when_hours, LinkId(0), Gbps(0), RegionId(0),
                        std::move(srlgs)});
}

void Topology::repair_srlgs(std::vector<SrlgId> srlgs, double when_hours) {
  std::sort(srlgs.begin(), srlgs.end(),
            [](SrlgId a, SrlgId b) { return a.value() < b.value(); });
  srlgs.erase(std::unique(srlgs.begin(), srlgs.end()), srlgs.end());
  NETENT_EXPECTS(!srlgs.empty());
  for (const SrlgId s : srlgs) {
    NETENT_EXPECTS(s.value() < srlg_count_);
    NETENT_EXPECTS(srlg_struck(s));
    struck_[s.value()] = 0;
  }
  record(MutationRecord{MutationKind::repair_srlgs, 0, when_hours, LinkId(0), Gbps(0), RegionId(0),
                        std::move(srlgs)});
}

LinkId Topology::apply(const Mutation& m) {
  switch (m.kind) {
    case MutationKind::add_fiber:
      if (m.conduit.has_value()) {
        return add_fiber_in_conduit(m.region_a, m.region_b, m.capacity, *m.conduit, m.when_hours);
      }
      return add_fiber(m.region_a, m.region_b, m.capacity, m.mtbf_hours, m.mttr_hours,
                       m.when_hours);
    case MutationKind::retire_fiber:
      retire_fiber(m.link, m.when_hours);
      return LinkId(0);
    case MutationKind::resize_fiber:
      resize_fiber(m.link, m.capacity, m.when_hours);
      return LinkId(0);
    case MutationKind::drain_region:
      drain_region(m.region_a, m.when_hours);
      return LinkId(0);
    case MutationKind::undrain_region:
      undrain_region(m.region_a, m.when_hours);
      return LinkId(0);
    case MutationKind::strike_srlgs:
      strike_srlgs(m.srlgs, m.when_hours);
      return LinkId(0);
    case MutationKind::repair_srlgs:
      repair_srlgs(m.srlgs, m.when_hours);
      return LinkId(0);
  }
  NETENT_EXPECTS(false);
  return LinkId(0);
}

Gbps Topology::effective_capacity(LinkId id) const {
  NETENT_EXPECTS(id.value() < links_.size());
  const Link& l = links_[id.value()];
  if (retired_[id.value()] != 0) return Gbps(0);
  if (drained_[l.src.value()] != 0 || drained_[l.dst.value()] != 0) return Gbps(0);
  if (struck_[l.srlg.value()] != 0) return Gbps(0);
  return l.capacity;
}

const Region& Topology::region(RegionId id) const {
  NETENT_EXPECTS(id.value() < regions_.size());
  return regions_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  NETENT_EXPECTS(id.value() < links_.size());
  return links_[id.value()];
}

std::span<const LinkId> Topology::out_links(RegionId id) const {
  NETENT_EXPECTS(id.value() < out_links_.size());
  return out_links_[id.value()];
}

std::optional<RegionId> Topology::find_region(const std::string& name) const {
  for (const auto& region : regions_) {
    if (region.name == name) return region.id;
  }
  return std::nullopt;
}

Gbps Topology::total_capacity() const {
  Gbps total(0);
  for (const auto& link : links_) total += link.capacity;
  return total;
}

Gbps Topology::total_effective_capacity() const {
  Gbps total(0);
  for (const auto& link : links_) total += effective_capacity(link.id);
  return total;
}

}  // namespace netent::topology
