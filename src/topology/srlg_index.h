// SRLG -> link inverted index. Failure scenarios are expressed as sets of
// down SRLGs; turning a scenario into its affected links used to cost a full
// O(links x |down|) scan per scenario. The index is built once per topology
// and answers the same question in O(|down|) lookups, which is what makes
// the incremental scenario-replay engine (replay.h) and the shared
// scenario-capacity helper cheap per scenario.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// Inverted index from SRLG to the directed links riding it. Every link
/// belongs to exactly one SRLG, so the per-SRLG link lists are disjoint and
/// their union is the full link set. Links are indexed for life — retired
/// fibers stay listed (their effective capacity is already 0, so zeroing
/// them again in a scenario is a no-op); after the topology gains links or
/// SRLGs, `resync()` appends the new entries.
class SrlgIndex {
 public:
  explicit SrlgIndex(const Topology& topo);

  /// Directed links whose fiber is `srlg` (ascending LinkId order).
  [[nodiscard]] std::span<const LinkId> links_of(SrlgId srlg) const;

  [[nodiscard]] std::size_t srlg_count() const { return links_by_srlg_.size(); }

  /// Catches up with topology growth: indexes links added since the last
  /// build/resync. Equivalent to rebuilding from scratch (new links have the
  /// highest ids, so appending keeps each list ascending).
  void resync(const Topology& topo);

 private:
  std::vector<std::vector<LinkId>> links_by_srlg_;
  std::size_t links_indexed_ = 0;
};

/// The sorted, deduplicated set of SRLGs traversed by `path`: the path's
/// failure signature. A scenario affects the path iff its down set
/// intersects this set.
[[nodiscard]] std::vector<SrlgId> path_srlgs(const Topology& topo, const Path& path);

}  // namespace netent::topology
