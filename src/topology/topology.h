// The WAN backbone model: regions (DCs and PoPs) connected by fibers, each
// fiber being a pair of directed links that share an SRLG (a fiber cut takes
// out both directions). Links carry capacity and reliability (MTBF/MTTR),
// which the risk subsystem turns into failure-scenario probabilities.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "topology/mutation.h"

namespace netent::topology {

enum class RegionKind : std::uint8_t { data_center, pop };

struct Region {
  RegionId id;
  std::string name;
  RegionKind kind = RegionKind::data_center;
};

/// One direction of a fiber. `reverse` is the opposite direction's LinkId.
struct Link {
  LinkId id;
  RegionId src;
  RegionId dst;
  SrlgId srlg;      ///< fiber identity; shared with `reverse`
  LinkId reverse;   ///< the other direction of the same fiber
  Gbps capacity;    ///< configured per-direction capacity (see effective_capacity)
  double mtbf_hours = 8760.0;  ///< mean time between failures
  double mttr_hours = 12.0;    ///< mean time to repair
};

/// Stationary unavailability of a link: the long-run fraction of time the
/// fiber is down, MTTR / (MTBF + MTTR). Degenerate reliability inputs follow
/// a documented convention instead of propagating NaN/inf:
///   mttr <= 0  ->  0.0  (instant or no repair: the link is never observed
///                        down; this rule wins when both are zero)
///   mtbf <= 0  ->  1.0  (fails immediately, repair takes time: always down)
[[nodiscard]] double link_unavailability(const Link& link);

/// Mutable, versioned backbone topology. Built through `add_region` /
/// `add_fiber`, then evolved through the lifecycle mutations (retire /
/// resize / drain / strike, see mutation.h) — every mutation appends a
/// MutationRecord to the log and bumps `epoch()`. The query interface is
/// const; LinkIds and SrlgIds are dense and stable forever (links are
/// retired in place, never erased). Regions are fixed once any Router is
/// attached: path stores size their pair tables by region_count.
///
/// Consumers holding topology-derived caches resync by replaying
/// `mutation_log().since(their_epoch)` — see Router::resync_topology().
class Topology {
 public:
  RegionId add_region(std::string name, RegionKind kind);

  /// Adds a bidirectional fiber: two directed links sharing one SRLG.
  /// Returns the forward-direction link id (a -> b). Degenerate reliability
  /// (mtbf or mttr <= 0) is allowed under the link_unavailability
  /// convention. Usable during build AND as a lifecycle mutation (logged
  /// either way).
  LinkId add_fiber(RegionId a, RegionId b, Gbps capacity_per_direction, double mtbf_hours,
                   double mttr_hours, double when_hours = 0.0);

  /// Adds a bidirectional fiber laid in the same conduit as `existing`
  /// (same SRLG, same reliability): a single cut takes out both fibers.
  /// Models the correlated-failure reality that "parallel" capacity often
  /// shares physical risk. Returns the forward-direction link id.
  LinkId add_fiber_in_conduit(RegionId a, RegionId b, Gbps capacity_per_direction,
                              LinkId existing, double when_hours = 0.0);

  // --- Lifecycle mutations (mutation.h). Each logs a record + bumps epoch.

  /// Retires the fiber (both directions): effective capacity 0, excluded
  /// from new path computation. Irreversible; `fiber` may be either
  /// direction's id. The link keeps its slot, SRLG and reliability (an SRLG
  /// all of whose fibers are retired stops contributing failure scenarios).
  void retire_fiber(LinkId fiber, double when_hours = 0.0);

  /// Re-provisions the fiber's per-direction capacity (both directions).
  void resize_fiber(LinkId fiber, Gbps capacity_per_direction, double when_hours = 0.0);

  /// Maintenance drain: every link touching `region` gets effective
  /// capacity 0 until undrained. Drained links keep their place in compiled
  /// path sets (path costs are hop counts), they just carry nothing.
  void drain_region(RegionId region, double when_hours = 0.0);
  void undrain_region(RegionId region, double when_hours = 0.0);

  /// Correlated storm: all links of the listed SRLGs get effective capacity
  /// 0 until repaired. `srlgs` is sorted+deduped into the record.
  void strike_srlgs(std::vector<SrlgId> srlgs, double when_hours = 0.0);
  void repair_srlgs(std::vector<SrlgId> srlgs, double when_hours = 0.0);

  /// Uniform dispatch of one Mutation (the admission plane's delta windows
  /// arrive as Mutation lists). Returns the created forward link id for
  /// add_fiber kinds, LinkId(0) otherwise.
  LinkId apply(const Mutation& mutation);

  // --- Versioning.

  /// Number of mutations ever applied (0 for an empty topology). Bumped by
  /// every add/retire/resize/drain/undrain/strike/repair.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const MutationLog& mutation_log() const { return log_; }

  // --- Lifecycle state queries.

  [[nodiscard]] bool link_retired(LinkId id) const { return retired_[id.value()] != 0; }
  [[nodiscard]] bool region_drained(RegionId id) const { return drained_[id.value()] != 0; }
  [[nodiscard]] bool srlg_struck(SrlgId id) const { return struck_[id.value()] != 0; }

  /// The capacity the link offers right now: 0 when the link is retired,
  /// either endpoint region is drained, or its SRLG is struck; the
  /// configured capacity otherwise.
  [[nodiscard]] Gbps effective_capacity(LinkId id) const;

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t srlg_count() const { return srlg_count_; }

  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] std::span<const Region> regions() const { return regions_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Outgoing links of a region.
  [[nodiscard]] std::span<const LinkId> out_links(RegionId id) const;

  /// Looks up a region by name; nullopt if absent.
  [[nodiscard]] std::optional<RegionId> find_region(const std::string& name) const;

  /// Sum of configured capacities of all directed links.
  [[nodiscard]] Gbps total_capacity() const;

  /// Sum of effective capacities (retired/drained/struck links count 0).
  [[nodiscard]] Gbps total_effective_capacity() const;

 private:
  LinkId push_fiber(RegionId a, RegionId b, Gbps capacity, SrlgId srlg, double mtbf_hours,
                    double mttr_hours);
  void record(MutationRecord record);

  std::vector<Region> regions_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::size_t srlg_count_ = 0;

  std::vector<char> retired_;  ///< per link
  std::vector<char> drained_;  ///< per region
  std::vector<char> struck_;   ///< per SRLG
  std::uint64_t epoch_ = 0;
  MutationLog log_;
};

}  // namespace netent::topology
