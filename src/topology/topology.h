// The WAN backbone model: regions (DCs and PoPs) connected by fibers, each
// fiber being a pair of directed links that share an SRLG (a fiber cut takes
// out both directions). Links carry capacity and reliability (MTBF/MTTR),
// which the risk subsystem turns into failure-scenario probabilities.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace netent::topology {

enum class RegionKind : std::uint8_t { data_center, pop };

struct Region {
  RegionId id;
  std::string name;
  RegionKind kind = RegionKind::data_center;
};

/// One direction of a fiber. `reverse` is the opposite direction's LinkId.
struct Link {
  LinkId id;
  RegionId src;
  RegionId dst;
  SrlgId srlg;      ///< fiber identity; shared with `reverse`
  LinkId reverse;   ///< the other direction of the same fiber
  Gbps capacity;
  double mtbf_hours = 8760.0;  ///< mean time between failures
  double mttr_hours = 12.0;    ///< mean time to repair
};

/// Stationary unavailability of a link: the long-run fraction of time the
/// fiber is down, MTTR / (MTBF + MTTR).
[[nodiscard]] double link_unavailability(const Link& link);

/// Immutable-after-build backbone topology. Built through `add_region` /
/// `add_fiber`; the query interface is const.
class Topology {
 public:
  RegionId add_region(std::string name, RegionKind kind);

  /// Adds a bidirectional fiber: two directed links sharing one SRLG.
  /// Returns the forward-direction link id (a -> b).
  LinkId add_fiber(RegionId a, RegionId b, Gbps capacity_per_direction, double mtbf_hours,
                   double mttr_hours);

  /// Adds a bidirectional fiber laid in the same conduit as `existing`
  /// (same SRLG, same reliability): a single cut takes out both fibers.
  /// Models the correlated-failure reality that "parallel" capacity often
  /// shares physical risk. Returns the forward-direction link id.
  LinkId add_fiber_in_conduit(RegionId a, RegionId b, Gbps capacity_per_direction,
                              LinkId existing);

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t srlg_count() const { return srlg_count_; }

  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] std::span<const Region> regions() const { return regions_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Outgoing links of a region.
  [[nodiscard]] std::span<const LinkId> out_links(RegionId id) const;

  /// Looks up a region by name; nullopt if absent.
  [[nodiscard]] std::optional<RegionId> find_region(const std::string& name) const;

  /// Sum of capacities of all directed links.
  [[nodiscard]] Gbps total_capacity() const;

 private:
  std::vector<Region> regions_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::size_t srlg_count_ = 0;
};

}  // namespace netent::topology
