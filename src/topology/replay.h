// Incremental failure-scenario replay. The risk sweep places the same
// demand batch under thousands of failure scenarios, but a scenario zeroes
// only a handful of links that most cached candidate paths never traverse —
// so most of each from-scratch placement re-derives bits the baseline
// (no-failure) placement already produced.
//
// ScenarioSweeper exploits that structure while staying BIT-identical to the
// full placement:
//  * A demand's outcome is a pure function of the links on its SCANNED
//    paths — the leading candidate paths the baseline waterfall actually
//    evaluated before the demand was fully placed. A failed link on an
//    unreached backup path cannot change anything, so all of the structures
//    below index scanned links, not all candidate links.
//  * Per SRLG, the first demand (in placement order) whose scanned paths
//    traverse a link on that SRLG is precomputed once; a scenario's replay
//    start point is then the min over its |down| SRLGs — O(|down|), not
//    O(links) or O(demands).
//  * Divergence from the baseline is tracked per link, and a link -> demands
//    inverted index over scanned links turns "which demands could care"
//    into O(1) mask reads. Each suffix demand falls into one of three
//    classes:
//      1. UNTOUCHED — no scanned link is diverged. Places bit-identically
//         to the baseline (it reads only bit-equal residuals, so it stops
//         at the same point and never reaches a diverged backup path) and
//         keeps every link it touches bit-identical, so the replay does
//         nothing at all (the baseline outcome was bulk-copied up front).
//      2. TOUCHED BUT DECISION-IDENTICAL — some scanned links are diverged,
//         but on both runs each such link's residual is >= the remaining
//         amount the baseline had in front of the (single) scanned path the
//         link appears on (conservatively the full demand amount for a
//         link shared by several scanned paths). The waterfall's bottleneck
//         min-chain starts at `remaining`, so such a link can never bind
//         and every placement decision is bit-identical; the demand only
//         needs its recorded baseline subtraction ops applied to the
//         diverged links' materialized residuals. Crucially this class does
//         NOT spread divergence — it is what stops the "everything
//         transitively touches a diverged link" avalanche, and the
//         per-path threshold keeps large multi-path demands skippable when
//         only their small spillover tail touches a diverged link.
//      3. AFFECTED — a diverged scanned link could bind (residual below the
//         demand amount on either run). The demand is re-placed through
//         the same water_fill_demand arithmetic: non-diverged candidate
//         links (all of them — a rerouted demand may now reach its backup
//         paths) are first seeded from the recorded baseline before-trace,
//         then each candidate link is re-classified by comparing the
//         scenario residual to the recorded baseline after-trace (links can
//         heal, e.g. both drained to zero); newly diverged links mark their
//         scanned-adjacent demands via the inverted index.
//  * The baseline placement also records PlacementState residual snapshots
//    every `checkpoint_interval` demands. When a scenario's divergence
//    explodes (most examined demands land in class 3 — e.g. a saturated
//    batch where any failure re-routes everything), the sparse walk is
//    abandoned deterministically and the scenario is re-placed densely from
//    the nearest checkpoint at or before the first affected demand: restore
//    the snapshot, zero the failed links (their residual at that point
//    provably equals the base capacity), water-fill the whole suffix. The
//    trigger depends only on the demand/scenario data, never on thread
//    schedule.
//  * A scenario touching no cached candidate path short-circuits: the
//    baseline outcome is reused wholesale.
//
// Exactness argument (induction over placement order): the invariant is
// that a non-diverged link's scenario residual bit-equals the baseline
// residual trace at the current step (it is never materialized), while a
// diverged link's scenario residual is materialized in the workspace, and
// every demand with a diverged scanned link is marked affected.
// Class-1 demands read only non-diverged residuals on their scanned paths,
// make bit-identical decisions (stopping at the same path, so unreached
// paths stay unread) and subtract equal amounts from equal values — every
// link they touch stays in its class. Class-2 demands make bit-identical
// decisions because their diverged scanned links never bind: each is, on
// both runs, >= the remaining amount in front of the scanned path it
// appears on, and `remaining` caps every bottleneck, so every min-chain
// resolves identically (induction over paths — identical placements on
// earlier paths keep each path's `remaining` bit-equal to the recorded
// baseline value); applying the logged baseline ops to the diverged links
// keeps those materialized values exact (equal subtrahends), and their
// non-diverged links stay bit-equal for the same reason as class 1.
// Class-3 demands run the one true water_fill_demand over exact scenario
// residuals (seeded from the before-trace for non-diverged links), so
// their outcome is exact by construction, and the compare-against-after-
// trace pass over all candidate links restores the mask invariant. For the dense fallback: no demand before the first affected
// index touches a failed link, so the checkpoint residual on failed links
// is the untouched base capacity, and zeroing them reproduces the exact
// scenario state; the suffix then re-runs the identical arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/placement_arena.h"
#include "topology/routing.h"
#include "topology/srlg_index.h"

namespace netent::topology {

/// Immutable-after-construction replay engine for one (demand batch, base
/// capacity) pair. `replay()` is const and safe to call from many threads at
/// once, each with its own Workspace (thread-confined mutable state).
class ScenarioSweeper {
 public:
  struct Config {
    /// Baseline residual snapshots are taken every this many demands.
    /// Smaller = replays start closer to the first affected demand at the
    /// cost of O(demands / K) stored capacity vectors.
    std::size_t checkpoint_interval = 4;
  };

  /// Per-replay accounting, consumed by the risk layer's obs counters.
  struct ReplayStats {
    /// Demands that kept the baseline outcome: the unaffected prefix,
    /// untouched suffix demands, and touched-but-decision-identical demands.
    std::size_t demands_skipped = 0;
    std::size_t demands_replayed = 0;  ///< demands actually water-filled
    bool short_circuited = false;      ///< baseline reused wholesale
  };

  /// Thread-confined scratch state; reused across replay() calls.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class ScenarioSweeper;
    /// Materialized scenario residuals. Only entries whose link is (or was)
    /// diverged hold meaningful values; non-diverged links implicitly carry
    /// the baseline trace and are seeded on demand.
    std::vector<double> residual_;
    std::vector<char> diverged_;   ///< per link: residual differs from baseline trace
    std::vector<LinkId> touched_;  ///< links marked during this replay (for reset)
    /// Per demand, one bit: some scanned link is/was diverged. Word-packed
    /// so the replay walk skips 64 untouched demands per load; epoch-stamped
    /// so clearing it per scenario is O(1), not O(demands / 64).
    common::EpochWords affected_words_;
  };

  /// Runs the baseline placement and precomputes the SRLG index, per-demand
  /// candidate-path lists and checkpoints. `router` must already be
  /// warmed for every (src, dst) pair in `demands` and must outlive the
  /// sweeper with its path cache unmodified (take a Router::SweepGuard for
  /// the sweep's duration).
  ScenarioSweeper(const Router& router, std::span<const Demand> demands,
                  std::span<const double> base_capacity_gbps, Config config);
  ScenarioSweeper(const Router& router, std::span<const Demand> demands,
                  std::span<const double> base_capacity_gbps)
      : ScenarioSweeper(router, demands, base_capacity_gbps, Config()) {}

  /// Placed Gbps per demand under the scenario failing `down_srlgs`,
  /// bit-identical to
  /// `router.route_warmed(demands, base-with-failed-links-zeroed)
  ///        .placed_per_demand`.
  /// `placed_out.size()` must equal `demand_count()`.
  void replay(std::span<const SrlgId> down_srlgs, Workspace& workspace,
              std::span<double> placed_out, ReplayStats* stats = nullptr) const;

  /// A per-link base-capacity override: the link's intact capacity for this
  /// replay, replacing the value the sweeper was built with. The vehicle for
  /// capacity-only topology deltas (resize/drain/strike): an existing warmed
  /// sweeper replays against the mutated capacities without re-recording its
  /// baseline.
  struct LinkOverride {
    LinkId link;
    double capacity_gbps = 0.0;
  };

  /// As replay(), but with `overrides` applied to the base capacities first
  /// (a link both overridden and failed is down — zero wins). Bit-identical
  /// to a fresh ScenarioSweeper built on the overridden base replaying
  /// `down_srlgs`. Exactness rides the same induction as failed links:
  /// an overridden link is seeded diverged at its override value, which is
  /// its true scenario residual — no demand before its first scanned
  /// dependent ever subtracts from it. Overridden links must have existed
  /// when the sweeper was built (structural deltas need a rebuild).
  void replay_with_overrides(std::span<const SrlgId> down_srlgs,
                             std::span<const LinkOverride> overrides, Workspace& workspace,
                             std::span<double> placed_out, ReplayStats* stats = nullptr) const;

  /// The no-failure outcome (what replay({}) yields).
  [[nodiscard]] std::span<const double> baseline_placed() const { return baseline_placed_; }

  [[nodiscard]] std::size_t demand_count() const { return demands_.size(); }
  [[nodiscard]] std::size_t checkpoint_count() const { return checkpoints_.size(); }
  [[nodiscard]] const SrlgIndex& srlg_index() const { return index_; }

 private:
  struct Checkpoint {
    std::size_t first_demand = 0;   ///< replay resumes at this demand index
    std::vector<double> residual;   ///< state after demands [0, first_demand)
  };

  /// Baseline traces for all demands in CSR (offset + flat array) layout:
  /// the replay walk visits marked demands in ascending order, so flat
  /// arrays keep every access sequential and prefetchable instead of
  /// chasing per-demand heap vectors. Ranges for demand i are
  /// [<x>_off[i], <x>_off[i + 1]).
  struct TraceStore {
    /// Deduped candidate-path links with the baseline residuals
    /// immediately BEFORE and AFTER the demand placed.
    std::vector<std::uint32_t> link_off;
    std::vector<std::uint32_t> link;
    std::vector<double> residual_before;  ///< aligned with `link`
    std::vector<double> residual_after;   ///< aligned with `link`
    /// Deduped links on the baseline's scanned paths — the demand's
    /// outcome depends on exactly these residuals — with their
    /// before-residuals duplicated for a single-array class check.
    std::vector<std::uint32_t> scan_off;
    std::vector<std::uint32_t> scan_link;
    std::vector<double> scan_residual_before;  ///< aligned with `scan_link`
    /// Aligned with `scan_link`: the bind threshold for the class-2 check.
    /// For a link appearing on exactly one scanned path this is the
    /// baseline's remaining amount in front of that path (the waterfall's
    /// `remaining` caps every bottleneck, so a link whose residual is >=
    /// this value on both runs cannot bind); for a link shared by several
    /// scanned paths it is the conservative full demand amount.
    std::vector<double> scan_required;
    /// The exact subtraction ops the baseline water-fill applied, in
    /// execution order (replaying them is bit-identical to re-running the
    /// fill).
    std::vector<std::uint32_t> ops_off;
    std::vector<std::uint32_t> ops_link;
    std::vector<double> ops_amount;  ///< aligned with `ops_link`
  };

  std::vector<Demand> demands_;
  std::vector<PathList> candidate_paths_;  ///< per demand, into the Router's CSR store
  TraceStore traces_;
  /// Per link, CSR: indices of demands whose baseline SCANNED paths
  /// traverse it, in placement order — the inverted index that makes
  /// marking newly diverged links' dependents O(adjacent demands) instead
  /// of O(demands x links).
  std::vector<std::uint32_t> dependents_off_;
  std::vector<std::uint32_t> dependents_;
  SrlgIndex index_;
  /// Per SRLG: the first demand index whose baseline scanned paths traverse
  /// a link on that SRLG; demand_count() when none does.
  std::vector<std::size_t> first_affected_demand_;
  std::vector<double> baseline_placed_;
  std::vector<Checkpoint> checkpoints_;  ///< checkpoints_[j].first_demand == j * K
  std::size_t checkpoint_interval_;
};

}  // namespace netent::topology
