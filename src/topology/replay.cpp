#include "topology/replay.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace netent::topology {

namespace {
// The sparse walk is abandoned for the dense checkpoint path once at least
// this many demands were water-filled AND they form the majority of the
// examined suffix — at that density the per-demand class bookkeeping costs
// more than plainly re-filling everything. Data-dependent only, so the
// decision is identical at any thread count.
constexpr std::size_t kDenseFallbackMinReplayed = 32;
}  // namespace

ScenarioSweeper::ScenarioSweeper(const Router& router, std::span<const Demand> demands,
                                 std::span<const double> base_capacity_gbps, Config config)
    : demands_(demands.begin(), demands.end()),
      index_(router.topo()),
      first_affected_demand_(router.topo().srlg_count(), demands.size()),
      checkpoint_interval_(std::max<std::size_t>(1, config.checkpoint_interval)) {
  const std::size_t link_count = router.topo().link_count();
  NETENT_EXPECTS(base_capacity_gbps.size() == link_count);

  // Resolve every demand's candidate paths once: replays never pay even the
  // O(1) dense-table lookup route_warmed does per demand per scenario.
  candidate_paths_.reserve(demands_.size());
  for (const Demand& demand : demands_) {
    const PathList paths = router.cached_paths(demand.src, demand.dst);
    NETENT_EXPECTS(paths.valid());  // warm() must cover the pair
    candidate_paths_.push_back(paths);
  }

  // Baseline placement, snapshotting the residual state every K demands and
  // recording each demand's trace (deduped candidate links, the residuals
  // around its placement, the scanned-path link subset and the exact
  // subtraction ops) straight into the flat CSR store.
  std::vector<double> residual(base_capacity_gbps.begin(), base_capacity_gbps.end());
  const std::size_t n = demands_.size();
  baseline_placed_.reserve(n);
  traces_.link_off.reserve(n + 1);
  traces_.scan_off.reserve(n + 1);
  traces_.ops_off.reserve(n + 1);
  traces_.link_off.push_back(0);
  traces_.scan_off.push_back(0);
  traces_.ops_off.push_back(0);
  checkpoints_.reserve(n / checkpoint_interval_ + 1);
  std::vector<std::uint32_t> links;         // per-demand scratch
  std::vector<std::uint32_t> scan_links;    // per-demand scratch
  std::vector<std::pair<LinkId, double>> ops;
  std::vector<double> path_placed;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % checkpoint_interval_ == 0) {
      checkpoints_.push_back({i, residual});
    }
    links.clear();
    for (const PathView path : candidate_paths_[i]) {
      for (const LinkId lid : path.links) links.push_back(lid.value());
    }
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    for (const std::uint32_t l : links) {
      traces_.link.push_back(l);
      traces_.residual_before.push_back(residual[l]);
    }

    ops.clear();
    std::size_t scanned_paths = 0;
    const double amount = demands_[i].amount.value();
    baseline_placed_.push_back(water_fill_demand(amount, candidate_paths_[i], residual, {},
                                                 &ops, &scanned_paths, &path_placed));
    for (const auto& [lid, amt] : ops) {
      traces_.ops_link.push_back(lid.value());
      traces_.ops_amount.push_back(amt);
    }
    for (const std::uint32_t l : links) traces_.residual_after.push_back(residual[l]);

    scan_links.clear();
    for (std::size_t p = 0; p < scanned_paths; ++p) {
      for (const LinkId lid : candidate_paths_[i][p].links) scan_links.push_back(lid.value());
    }
    std::sort(scan_links.begin(), scan_links.end());
    scan_links.erase(std::unique(scan_links.begin(), scan_links.end()), scan_links.end());
    for (const std::uint32_t l : scan_links) {
      traces_.scan_link.push_back(l);
      // residual_before is aligned with the (sorted) deduped link range.
      const auto begin = traces_.link.begin() + traces_.link_off[i];
      const auto it = std::lower_bound(begin, traces_.link.end(), l);
      traces_.scan_residual_before.push_back(
          traces_.residual_before[static_cast<std::size_t>(it - traces_.link.begin())]);
      // Bind threshold: the baseline remaining in front of the single
      // scanned path this link appears on, or the full amount when it sits
      // on several scanned paths. `remaining` is reconstructed with the
      // same left-to-right subtractions the waterfall performs, so the
      // threshold bits match what the fill compared against.
      std::size_t occurrences = 0;
      std::size_t first_path = 0;
      for (std::size_t p = 0; p < scanned_paths; ++p) {
        const auto path_links = candidate_paths_[i][p].links;
        if (std::find(path_links.begin(), path_links.end(), LinkId(l)) != path_links.end()) {
          if (occurrences == 0) first_path = p;
          ++occurrences;
        }
      }
      double required = amount;
      if (occurrences == 1) {
        for (std::size_t p = 0; p < first_path; ++p) required -= path_placed[p];
      }
      traces_.scan_required.push_back(required);
    }

    traces_.link_off.push_back(static_cast<std::uint32_t>(traces_.link.size()));
    traces_.scan_off.push_back(static_cast<std::uint32_t>(traces_.scan_link.size()));
    traces_.ops_off.push_back(static_cast<std::uint32_t>(traces_.ops_link.size()));
  }
  if (checkpoints_.empty()) checkpoints_.push_back({0, residual});

  // Link -> scanned-dependent demands inverted index (CSR, counting sort so
  // each dependent list is in placement order).
  dependents_off_.assign(link_count + 1, 0);
  for (const std::uint32_t l : traces_.scan_link) ++dependents_off_[l + 1];
  for (std::size_t l = 0; l < link_count; ++l) dependents_off_[l + 1] += dependents_off_[l];
  dependents_.resize(traces_.scan_link.size());
  std::vector<std::uint32_t> cursor(dependents_off_.begin(), dependents_off_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = traces_.scan_off[i]; k < traces_.scan_off[i + 1]; ++k) {
      dependents_[cursor[traces_.scan_link[k]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Per-SRLG first affected demand: the head of the inverted index lists
  // (which are in placement order) over the SRLG's links.
  for (std::size_t s = 0; s < first_affected_demand_.size(); ++s) {
    std::size_t& first = first_affected_demand_[s];
    for (const LinkId lid : index_.links_of(SrlgId(static_cast<std::uint32_t>(s)))) {
      const std::uint32_t l = lid.value();
      if (dependents_off_[l] != dependents_off_[l + 1]) {
        first = std::min(first, static_cast<std::size_t>(dependents_[dependents_off_[l]]));
      }
    }
  }
}

void ScenarioSweeper::replay(std::span<const SrlgId> down_srlgs, Workspace& workspace,
                             std::span<double> placed_out, ReplayStats* stats) const {
  replay_with_overrides(down_srlgs, {}, workspace, placed_out, stats);
}

void ScenarioSweeper::replay_with_overrides(std::span<const SrlgId> down_srlgs,
                                            std::span<const LinkOverride> overrides,
                                            Workspace& workspace, std::span<double> placed_out,
                                            ReplayStats* stats) const {
  const std::size_t n = demands_.size();
  NETENT_EXPECTS(placed_out.size() == n);

  // O(|down| + |overrides|): first demand whose scanned paths touch a failed
  // or overridden link.
  std::size_t first = n;
  for (const SrlgId srlg : down_srlgs) {
    NETENT_EXPECTS(srlg.value() < first_affected_demand_.size());
    first = std::min(first, first_affected_demand_[srlg.value()]);
  }
  for (const LinkOverride& override : overrides) {
    const std::uint32_t l = override.link.value();
    NETENT_EXPECTS(l + 1 < dependents_off_.size() &&
                   "override for a link the sweeper was not built with");
    if (dependents_off_[l] != dependents_off_[l + 1]) {
      // Dependent lists are in placement order; the head is the first.
      first = std::min(first, static_cast<std::size_t>(dependents_[dependents_off_[l]]));
    }
  }

  if (first == n) {  // no scanned path is affected: baseline holds exactly
    std::copy(baseline_placed_.begin(), baseline_placed_.end(), placed_out.begin());
    if (stats != nullptr) *stats = {n, 0, true};
    return;
  }

  const std::size_t link_count = dependents_off_.size() - 1;
  if (workspace.diverged_.size() != link_count) {
    workspace.diverged_.assign(link_count, 0);
    workspace.residual_.assign(link_count, 0.0);
  }
  const std::size_t words = (n + 63) / 64;
  workspace.affected_words_.reset(words);
  workspace.touched_.clear();

  const auto mark_dependents = [&](std::uint32_t l) {
    for (std::size_t k = dependents_off_[l]; k < dependents_off_[l + 1]; ++k) {
      workspace.affected_words_.set_bit(dependents_[k]);
    }
  };
  // Overridden links first: seeded diverged at their override value (their
  // true scenario residual — nothing before `first` touches them). Failed
  // links second, so a link both overridden and failed ends at zero.
  for (const LinkOverride& override : overrides) {
    const std::uint32_t l = override.link.value();
    workspace.residual_[l] = override.capacity_gbps;
    if (workspace.diverged_[l] == 0) {
      workspace.diverged_[l] = 1;
      workspace.touched_.push_back(override.link);
      mark_dependents(l);
    }
  }
  for (const SrlgId srlg : down_srlgs) {
    for (const LinkId lid : index_.links_of(srlg)) {
      const std::uint32_t l = lid.value();
      workspace.residual_[l] = 0.0;
      if (workspace.diverged_[l] == 0) {
        workspace.diverged_[l] = 1;
        workspace.touched_.push_back(lid);
        mark_dependents(l);
      }
    }
  }

  // Untouched and decision-identical demands keep the baseline outcome; copy
  // it wholesale up front so they cost nothing in the walk.
  std::copy(baseline_placed_.begin(), baseline_placed_.end(), placed_out.begin());
  std::size_t replayed = 0;
  for (std::size_t w = first >> 6; w < words; ++w) {
    std::uint64_t bits = workspace.affected_words_.read(w) &
                         (~std::uint64_t{0} << (w == (first >> 6) ? (first & 63) : 0));
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const std::size_t i = (w << 6) | static_cast<std::size_t>(b);
      const double amount = demands_[i].amount.value();

      // Class 2 check over the scanned links (unreached backup paths cannot
      // influence the outcome): every diverged scanned link has residual >=
      // its bind threshold on BOTH runs, so it can never bind the
      // bottleneck min-chain and the placement is bit-identical.
      bool identical = true;
      bool touched = false;
      for (std::size_t k = traces_.scan_off[i]; k < traces_.scan_off[i + 1]; ++k) {
        const std::uint32_t l = traces_.scan_link[k];
        if (workspace.diverged_[l] == 0) continue;
        touched = true;
        const double required = traces_.scan_required[k];
        if (workspace.residual_[l] >= required &&
            traces_.scan_residual_before[k] >= required) {
          continue;
        }
        identical = false;
        break;
      }
      if (!touched) continue;  // marked earlier, but every diverged link healed
      if (identical) {
        // Apply the baseline subtraction ops to the materialized (diverged)
        // links only; non-diverged links track the baseline trace
        // implicitly. Equal subtrahends keep every link in its current
        // class, so the diverged set does not spread.
        for (std::size_t k = traces_.ops_off[i]; k < traces_.ops_off[i + 1]; ++k) {
          const std::uint32_t l = traces_.ops_link[k];
          if (workspace.diverged_[l] != 0) workspace.residual_[l] -= traces_.ops_amount[k];
        }
        continue;  // placed_out[i] already holds the baseline outcome
      }

      // Class 3: a diverged scanned link could bind. Seed the non-diverged
      // candidate links from the baseline before-trace (a rerouted demand
      // may now reach its backup paths), then re-run the one true fill.
      for (std::size_t k = traces_.link_off[i]; k < traces_.link_off[i + 1]; ++k) {
        const std::uint32_t l = traces_.link[k];
        if (workspace.diverged_[l] == 0) workspace.residual_[l] = traces_.residual_before[k];
      }
      placed_out[i] = water_fill_demand(amount, candidate_paths_[i], workspace.residual_, {});
      ++replayed;
      // Re-classify this demand's links: diverged iff the scenario residual
      // now differs from the baseline's post-placement residual. Newly
      // diverged links mark their dependent demands.
      bool marked_new = false;
      for (std::size_t k = traces_.link_off[i]; k < traces_.link_off[i + 1]; ++k) {
        const std::uint32_t l = traces_.link[k];
        const bool diverged = workspace.residual_[l] != traces_.residual_after[k];
        if (diverged && workspace.diverged_[l] == 0) {
          workspace.diverged_[l] = 1;
          workspace.touched_.push_back(LinkId(l));
          mark_dependents(l);
          marked_new = true;
        } else if (!diverged) {
          workspace.diverged_[l] = 0;  // healed; stays in touched_ for reset
        }
      }
      if (marked_new && b < 63) {
        // Pick up any same-word demands the marking just added after i.
        bits |= workspace.affected_words_.read(w) & (~std::uint64_t{0} << (b + 1));
      }

      if (replayed >= kDenseFallbackMinReplayed && replayed * 2 >= i - first + 1) {
        // Divergence exploded: finish densely from the nearest checkpoint.
        // The checkpoint precedes `first`, so failed/overridden links are
        // provably untouched in it: overriding then zeroing reproduces the
        // exact scenario state.
        const Checkpoint& checkpoint = checkpoints_[first / checkpoint_interval_];
        const std::size_t start = checkpoint.first_demand;
        workspace.residual_.assign(checkpoint.residual.begin(), checkpoint.residual.end());
        for (const LinkOverride& override : overrides) {
          workspace.residual_[override.link.value()] = override.capacity_gbps;
        }
        for (const SrlgId srlg : down_srlgs) {
          for (const LinkId lid : index_.links_of(srlg)) workspace.residual_[lid.value()] = 0.0;
        }
        for (std::size_t k = start; k < n; ++k) {
          placed_out[k] = water_fill_demand(demands_[k].amount.value(), candidate_paths_[k],
                                            workspace.residual_, {});
        }
        for (const LinkId lid : workspace.touched_) workspace.diverged_[lid.value()] = 0;
        workspace.touched_.clear();
        if (stats != nullptr) *stats = {start, n - start, false};
        return;
      }
    }
  }
  for (const LinkId lid : workspace.touched_) workspace.diverged_[lid.value()] = 0;
  workspace.touched_.clear();
  if (stats != nullptr) *stats = {n - replayed, replayed, false};
}

}  // namespace netent::topology
