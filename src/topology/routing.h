// Path-based routing engine. Demands are placed greedily on k-shortest
// candidate paths with water-filling: fill the shortest path up to the
// residual capacity, spill the remainder to the next path. This is the
// routing model shared by the hose-coverage metric, the risk simulator's
// multi-pipe admissibility and the approval engine.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// A point-to-point bandwidth demand.
struct Demand {
  RegionId src;
  RegionId dst;
  Gbps amount;
};

/// Outcome of routing a demand set.
struct RouteResult {
  Gbps demand_total;            ///< sum of requested demand
  Gbps placed_total;            ///< how much was actually placed
  std::vector<double> link_load;  ///< Gbps load per LinkId
  std::vector<double> placed_per_demand;  ///< Gbps placed for each input demand
  bool fully_placed = false;    ///< placed_total == demand_total (within epsilon)
};

/// Caches k-shortest path sets per (src, dst) pair over a fixed topology.
/// The cache is populated lazily; `paths()` is therefore non-const but the
/// router is cheap to share by reference within one thread.
class Router {
 public:
  Router(const Topology& topo, std::size_t k_paths);

  /// Candidate paths for a pair on the intact topology.
  [[nodiscard]] const std::vector<Path>& paths(RegionId src, RegionId dst);

  /// Routes `demands` (in order) over candidate paths against per-link
  /// capacities `capacity_gbps` (indexed by LinkId). Partial placement is
  /// allowed; the result says how much fit.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands,
                                  std::span<const double> capacity_gbps);

  /// Routes against the topology's full link capacities.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands);

  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] std::size_t k_paths() const { return k_paths_; }

  /// Per-link capacities of the intact topology, indexed by LinkId.
  [[nodiscard]] std::vector<double> full_capacities() const;

 private:
  const Topology& topo_;
  std::size_t k_paths_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Path>> cache_;
};

}  // namespace netent::topology
