// Path-based routing engine. Demands are placed greedily on k-shortest
// candidate paths with water-filling: fill the shortest path up to the
// residual capacity, spill the remainder to the next path. This is the
// routing model shared by the hose-coverage metric, the risk simulator's
// multi-pipe admissibility and the approval engine.
//
// Data layout: candidate path sets live in a CSR `PathStore`
// (path_store.h) — dense (src, dst) pair table, one flat LinkId array —
// and placement scratch comes from the thread-local `PlacementArena`
// (common/placement_arena.h), so the steady-state hot path does no tree
// lookups and no heap allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "common/units.h"
#include "topology/path_store.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// A point-to-point bandwidth demand.
struct Demand {
  RegionId src;
  RegionId dst;
  Gbps amount;
};

/// Outcome of routing a demand set.
struct RouteResult {
  Gbps demand_total;            ///< sum of requested demand
  Gbps placed_total;            ///< how much was actually placed
  std::vector<double> link_load;  ///< Gbps load per LinkId
  std::vector<double> placed_per_demand;  ///< Gbps placed for each input demand
  bool fully_placed = false;    ///< placed_total == demand_total (within epsilon)
};

/// Placement epsilon: remainders and bottlenecks at or below this many Gbps
/// are treated as zero by the water-fill.
inline constexpr double kPlacementEps = 1e-6;

/// THE placement arithmetic: water-fills `amount_gbps` over
/// `candidate_paths` in order, capping each path at its bottleneck residual
/// and spilling the remainder to the next path. `residual` (indexed by
/// LinkId) is updated in place; when `link_load` is non-empty the placed
/// traffic is also accumulated there. Returns the placed amount.
///
/// `candidate_paths` is any random-access range of path-like elements (a
/// `.links` range of LinkId): `std::vector<Path>`, `std::span<const Path>`,
/// or the CSR-backed `PathList`. The arithmetic is layout-independent — the
/// float-op sequence depends only on link ids and residuals, which is what
/// makes the CSR layout bit-identical to the legacy one.
///
/// When `op_log` is non-null, every `residual[link] -= amount` this call
/// performs is appended to it in execution order; replaying the log against
/// an equal residual vector reproduces the exact same bits (a link shared by
/// two chosen paths is subtracted twice, not once by the sum — the log
/// preserves that).
///
/// When `scanned_paths_out` is non-null it receives the number of leading
/// candidate paths the fill actually evaluated (read residuals of) before
/// terminating — the demand's outcome is a pure function of those paths'
/// link residuals, which is what lets the scenario replay skip demands whose
/// scanned links are untouched even when a failed link sits on an unreached
/// backup path. When `path_placed_out` is non-null it is resized to
/// `candidate_paths.size()` and receives the Gbps placed on each path (0 for
/// skipped or unreached paths), letting callers reconstruct the remaining
/// amount in front of every path.
///
/// Every routing codepath — Router::route_warmed and the incremental
/// scenario replay (replay.h) — must go through this one function so their
/// floating-point operation sequences, and therefore their results, stay
/// bit-identical.
template <class PathRange>
double water_fill_demand(double amount_gbps, const PathRange& candidate_paths,
                         std::span<double> residual, std::span<double> link_load,
                         std::vector<std::pair<LinkId, double>>* op_log = nullptr,
                         std::size_t* scanned_paths_out = nullptr,
                         std::vector<double>* path_placed_out = nullptr) {
  NETENT_EXPECTS(amount_gbps >= 0.0);
  const std::size_t path_count = candidate_paths.size();
  if (path_placed_out != nullptr) path_placed_out->assign(path_count, 0.0);
  double remaining = amount_gbps;
  std::size_t scanned = 0;
  for (std::size_t p = 0; p < path_count; ++p) {
    if (remaining <= kPlacementEps) break;
    ++scanned;
    decltype(auto) path = candidate_paths[p];
    // Bottleneck residual along this path.
    double bottleneck = remaining;
    for (const LinkId lid : path.links) {
      bottleneck = std::min(bottleneck, residual[lid.value()]);
    }
    if (bottleneck <= kPlacementEps) continue;
    if (path_placed_out != nullptr) (*path_placed_out)[p] = bottleneck;
    for (const LinkId lid : path.links) {
      residual[lid.value()] -= bottleneck;
      if (!link_load.empty()) link_load[lid.value()] += bottleneck;
      if (op_log != nullptr) op_log->emplace_back(lid, bottleneck);
    }
    remaining -= bottleneck;
  }
  if (scanned_paths_out != nullptr) *scanned_paths_out = scanned;
  return amount_gbps - remaining;
}

/// Resync statistics reported by Router::resync_topology.
struct TopologyResyncStats {
  std::uint64_t from_epoch = 0;  ///< epoch the Router was synced to before
  std::uint64_t to_epoch = 0;    ///< topology epoch after the resync
  std::size_t mutations = 0;     ///< log records replayed
  std::size_t structural = 0;    ///< add/retire records among them
  std::size_t pairs_checked = 0;   ///< compiled pairs tested by the dirty predicate
  std::size_t pairs_dirty = 0;     ///< pairs whose KSP was re-run
  std::size_t pairs_changed = 0;   ///< pairs whose path set actually changed
  bool compacted = false;          ///< the store rewrote its arrays garbage-free
};

/// Caches k-shortest path sets per (src, dst) pair over a topology snapshot,
/// compiled into a CSR PathStore. The store is populated lazily by `paths()`
/// / the non-const `route()` overloads (single-threaded use). For concurrent
/// use, `warm()` the cache with every (src, dst) pair of the demand set up
/// front; `route_warmed()` is then const, reads only the immutable store,
/// and keeps all per-placement mutable state in thread-confined arena
/// scratch.
///
/// Topology lifecycle: the Router snapshots the topology's epoch at
/// construction; after the topology mutates, call `resync_topology()` (no
/// sweeps active, no PathList/PathView/full_capacities() span held across
/// the call) to catch up incrementally — only (src, dst) pairs whose
/// compiled path sets can have changed are recompiled, and the resulting
/// store content is identical to a freshly built Router's.
class Router {
 public:
  Router(const Topology& topo, std::size_t k_paths);

  /// RAII marker for an active read-only sweep (e.g. the parallel
  /// risk-scenario fan-out). While any guard is alive, lazy path-cache
  /// insertion is a contract violation: `paths()` / `route()` / `warm()` on
  /// an uncached pair throw instead of mutating the cache under concurrent
  /// readers. Cheap enough to be enforced in every build, not just debug.
  class SweepGuard {
   public:
    explicit SweepGuard(const Router& router) : router_(&router) {
      router_->active_sweeps_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SweepGuard() {
      if (router_ != nullptr) router_->active_sweeps_.fetch_sub(1, std::memory_order_acq_rel);
    }
    SweepGuard(SweepGuard&& other) noexcept : router_(std::exchange(other.router_, nullptr)) {}
    SweepGuard(const SweepGuard&) = delete;
    SweepGuard& operator=(const SweepGuard&) = delete;
    SweepGuard& operator=(SweepGuard&&) = delete;

   private:
    const Router* router_;
  };

  /// Candidate paths for a pair on the intact topology (computed lazily).
  /// Precondition: no SweepGuard is active when the pair misses the cache
  /// (insertion would race the sweep's readers). The returned PathList stays
  /// valid across later insertions.
  [[nodiscard]] PathList paths(RegionId src, RegionId dst);

  /// Precomputes candidate paths for every (src, dst) pair in `demands`.
  /// After this, `route_warmed()` may be called concurrently for any demand
  /// sequence drawn from those pairs.
  void warm(std::span<const Demand> demands);

  /// Routes `demands` (in order) over candidate paths against per-link
  /// capacities `capacity_gbps` (indexed by LinkId). Partial placement is
  /// allowed; the result says how much fit.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands,
                                  std::span<const double> capacity_gbps);

  /// Routes against the topology's full link capacities.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands);

  /// As route(), but strictly read-only: every (src, dst) pair must already
  /// be cached (via warm() or earlier routing), otherwise a contract
  /// violation is raised. Safe to call from many threads at once; results
  /// are bit-identical to route() for the same inputs.
  [[nodiscard]] RouteResult route_warmed(std::span<const Demand> demands,
                                         std::span<const double> capacity_gbps) const;

  /// Allocation-free variant for hot loops: places into `out`, reusing its
  /// vectors' capacity, and borrows residual scratch from the calling
  /// thread's PlacementArena. After the first call at a given topology size
  /// the steady state performs zero heap allocations. Same bits as
  /// route_warmed().
  void route_warmed_into(std::span<const Demand> demands,
                         std::span<const double> capacity_gbps, RouteResult& out) const;

  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] std::size_t k_paths() const { return k_paths_; }

  /// Read-only cache lookup: the candidate paths for a pair, or an invalid
  /// PathList if the pair was never warmed. Never inserts, so it is safe
  /// during an active sweep (the incremental replay engine resolves its
  /// per-demand path lists through this once, up front). O(1): one dense-
  /// table load, no tree walk.
  [[nodiscard]] PathList cached_paths(RegionId src, RegionId dst) const {
    return store_.find(src, dst);
  }

  /// Per-link EFFECTIVE capacities of the intact (no failure scenario)
  /// topology, indexed by LinkId: retired/drained/struck links read 0. A
  /// view of the Router's own capacity array — valid until the next
  /// `resync_topology()` (which may grow the array and refreshes every
  /// entry), not just for this epoch's values. Re-take the span after every
  /// resync.
  [[nodiscard]] std::span<const double> full_capacities() const { return full_caps_; }

  /// Catches the Router up with the topology's mutation log: refreshes the
  /// effective-capacity array and recompiles exactly the compiled (src, dst)
  /// pairs whose k-shortest path sets can differ (BFS bound through each
  /// added/retired fiber against the pair's k-th best compiled cost —
  /// capacity-only mutations never re-run KSP, path costs are hop counts).
  /// Postcondition: per-pair store content equals a fresh
  /// Router(topo, k_paths) warmed on the same pairs, bit-identical.
  ///
  /// Invalidates outstanding PathList/PathView handles and the
  /// full_capacities() span. Preconditions: no SweepGuard active, and
  /// region_count unchanged since construction.
  ///
  /// When `changed_pairs` is non-null it receives the (src, dst) pairs whose
  /// compiled path set actually changed (ascending slot order).
  void resync_topology(TopologyResyncStats* stats = nullptr,
                       std::vector<std::pair<RegionId, RegionId>>* changed_pairs = nullptr);

  /// The topology epoch this Router's caches reflect.
  [[nodiscard]] std::uint64_t synced_epoch() const { return synced_epoch_; }

  /// The underlying CSR store (read-only; for diagnostics and tests).
  [[nodiscard]] const PathStore& path_store() const { return store_; }

 private:
  const Topology& topo_;
  std::size_t k_paths_;
  std::size_t region_count_;  ///< snapshot; regions are fixed once attached
  PathStore store_;
  std::vector<double> full_caps_;  ///< intact per-link effective capacity, by LinkId
  std::uint64_t synced_epoch_ = 0;
  /// Count of live SweepGuards; paths() refuses cache insertion while > 0.
  mutable std::atomic<int> active_sweeps_{0};
};

}  // namespace netent::topology
