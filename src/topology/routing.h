// Path-based routing engine. Demands are placed greedily on k-shortest
// candidate paths with water-filling: fill the shortest path up to the
// residual capacity, spill the remainder to the next path. This is the
// routing model shared by the hose-coverage metric, the risk simulator's
// multi-pipe admissibility and the approval engine.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// A point-to-point bandwidth demand.
struct Demand {
  RegionId src;
  RegionId dst;
  Gbps amount;
};

/// Outcome of routing a demand set.
struct RouteResult {
  Gbps demand_total;            ///< sum of requested demand
  Gbps placed_total;            ///< how much was actually placed
  std::vector<double> link_load;  ///< Gbps load per LinkId
  std::vector<double> placed_per_demand;  ///< Gbps placed for each input demand
  bool fully_placed = false;    ///< placed_total == demand_total (within epsilon)
};

/// The mutable state of one placement pass: residual per-link capacity plus
/// the load accumulated so far. Each route() call owns a fresh instance, so
/// concurrent placements (e.g. the parallel risk-scenario sweep) never share
/// mutable state — one PlacementState per thread, passed by value/locally.
struct PlacementState {
  explicit PlacementState(std::span<const double> capacity_gbps)
      : residual(capacity_gbps.begin(), capacity_gbps.end()),
        link_load(capacity_gbps.size(), 0.0) {}

  std::vector<double> residual;   ///< remaining Gbps per LinkId
  std::vector<double> link_load;  ///< placed Gbps per LinkId
};

/// Caches k-shortest path sets per (src, dst) pair over a fixed topology.
/// The cache is populated lazily by `paths()` / the non-const `route()`
/// overloads (single-threaded use). For concurrent use, `warm()` the cache
/// with every (src, dst) pair of the demand set up front; `route_warmed()`
/// is then const, reads only the immutable cache, and keeps all per-
/// placement mutable state in a thread-confined PlacementState.
class Router {
 public:
  Router(const Topology& topo, std::size_t k_paths);

  /// Candidate paths for a pair on the intact topology (computed lazily).
  [[nodiscard]] const std::vector<Path>& paths(RegionId src, RegionId dst);

  /// Precomputes candidate paths for every (src, dst) pair in `demands`.
  /// After this, `route_warmed()` may be called concurrently for any demand
  /// sequence drawn from those pairs.
  void warm(std::span<const Demand> demands);

  /// Routes `demands` (in order) over candidate paths against per-link
  /// capacities `capacity_gbps` (indexed by LinkId). Partial placement is
  /// allowed; the result says how much fit.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands,
                                  std::span<const double> capacity_gbps);

  /// Routes against the topology's full link capacities.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands);

  /// As route(), but strictly read-only: every (src, dst) pair must already
  /// be cached (via warm() or earlier routing), otherwise a contract
  /// violation is raised. Safe to call from many threads at once; results
  /// are bit-identical to route() for the same inputs.
  [[nodiscard]] RouteResult route_warmed(std::span<const Demand> demands,
                                         std::span<const double> capacity_gbps) const;

  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] std::size_t k_paths() const { return k_paths_; }

  /// Per-link capacities of the intact topology, indexed by LinkId.
  [[nodiscard]] std::vector<double> full_capacities() const;

 private:
  [[nodiscard]] const std::vector<Path>* cached_paths(RegionId src, RegionId dst) const;

  /// The shared placement pass: water-fill `demand` over `candidate_paths`
  /// against `state`. Returns the placed amount.
  static double place_demand(const Demand& demand, const std::vector<Path>& candidate_paths,
                             PlacementState& state);

  const Topology& topo_;
  std::size_t k_paths_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Path>> cache_;
};

}  // namespace netent::topology
