// Path-based routing engine. Demands are placed greedily on k-shortest
// candidate paths with water-filling: fill the shortest path up to the
// residual capacity, spill the remainder to the next path. This is the
// routing model shared by the hose-coverage metric, the risk simulator's
// multi-pipe admissibility and the approval engine.
#pragma once

#include <atomic>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// A point-to-point bandwidth demand.
struct Demand {
  RegionId src;
  RegionId dst;
  Gbps amount;
};

/// Outcome of routing a demand set.
struct RouteResult {
  Gbps demand_total;            ///< sum of requested demand
  Gbps placed_total;            ///< how much was actually placed
  std::vector<double> link_load;  ///< Gbps load per LinkId
  std::vector<double> placed_per_demand;  ///< Gbps placed for each input demand
  bool fully_placed = false;    ///< placed_total == demand_total (within epsilon)
};

/// The mutable state of one placement pass: residual per-link capacity plus
/// the load accumulated so far. Each route() call owns a fresh instance, so
/// concurrent placements (e.g. the parallel risk-scenario sweep) never share
/// mutable state — one PlacementState per thread, passed by value/locally.
struct PlacementState {
  explicit PlacementState(std::span<const double> capacity_gbps)
      : residual(capacity_gbps.begin(), capacity_gbps.end()),
        link_load(capacity_gbps.size(), 0.0) {}

  std::vector<double> residual;   ///< remaining Gbps per LinkId
  std::vector<double> link_load;  ///< placed Gbps per LinkId
};

/// THE placement arithmetic: water-fills `amount_gbps` over
/// `candidate_paths` in order, capping each path at its bottleneck residual
/// and spilling the remainder to the next path. `residual` (indexed by
/// LinkId) is updated in place; when `link_load` is non-empty the placed
/// traffic is also accumulated there. Returns the placed amount.
///
/// When `op_log` is non-null, every `residual[link] -= amount` this call
/// performs is appended to it in execution order; replaying the log against
/// an equal residual vector reproduces the exact same bits (a link shared by
/// two chosen paths is subtracted twice, not once by the sum — the log
/// preserves that).
///
/// When `scanned_paths_out` is non-null it receives the number of leading
/// candidate paths the fill actually evaluated (read residuals of) before
/// terminating — the demand's outcome is a pure function of those paths'
/// link residuals, which is what lets the scenario replay skip demands whose
/// scanned links are untouched even when a failed link sits on an unreached
/// backup path. When `path_placed_out` is non-null it is resized to
/// `candidate_paths.size()` and receives the Gbps placed on each path (0 for
/// skipped or unreached paths), letting callers reconstruct the remaining
/// amount in front of every path.
///
/// Every routing codepath — Router::route_warmed and the incremental
/// scenario replay (replay.h) — must go through this one function so their
/// floating-point operation sequences, and therefore their results, stay
/// bit-identical.
double water_fill_demand(double amount_gbps, std::span<const Path> candidate_paths,
                         std::span<double> residual, std::span<double> link_load,
                         std::vector<std::pair<LinkId, double>>* op_log = nullptr,
                         std::size_t* scanned_paths_out = nullptr,
                         std::vector<double>* path_placed_out = nullptr);

/// Caches k-shortest path sets per (src, dst) pair over a fixed topology.
/// The cache is populated lazily by `paths()` / the non-const `route()`
/// overloads (single-threaded use). For concurrent use, `warm()` the cache
/// with every (src, dst) pair of the demand set up front; `route_warmed()`
/// is then const, reads only the immutable cache, and keeps all per-
/// placement mutable state in a thread-confined PlacementState.
class Router {
 public:
  Router(const Topology& topo, std::size_t k_paths);

  /// RAII marker for an active read-only sweep (e.g. the parallel
  /// risk-scenario fan-out). While any guard is alive, lazy path-cache
  /// insertion is a contract violation: `paths()` / `route()` / `warm()` on
  /// an uncached pair throw instead of mutating the cache under concurrent
  /// readers. Cheap enough to be enforced in every build, not just debug.
  class SweepGuard {
   public:
    explicit SweepGuard(const Router& router) : router_(&router) {
      router_->active_sweeps_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SweepGuard() {
      if (router_ != nullptr) router_->active_sweeps_.fetch_sub(1, std::memory_order_acq_rel);
    }
    SweepGuard(SweepGuard&& other) noexcept : router_(std::exchange(other.router_, nullptr)) {}
    SweepGuard(const SweepGuard&) = delete;
    SweepGuard& operator=(const SweepGuard&) = delete;
    SweepGuard& operator=(SweepGuard&&) = delete;

   private:
    const Router* router_;
  };

  /// Candidate paths for a pair on the intact topology (computed lazily).
  /// Precondition: no SweepGuard is active when the pair misses the cache
  /// (insertion would race the sweep's readers).
  [[nodiscard]] const std::vector<Path>& paths(RegionId src, RegionId dst);

  /// Precomputes candidate paths for every (src, dst) pair in `demands`.
  /// After this, `route_warmed()` may be called concurrently for any demand
  /// sequence drawn from those pairs.
  void warm(std::span<const Demand> demands);

  /// Routes `demands` (in order) over candidate paths against per-link
  /// capacities `capacity_gbps` (indexed by LinkId). Partial placement is
  /// allowed; the result says how much fit.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands,
                                  std::span<const double> capacity_gbps);

  /// Routes against the topology's full link capacities.
  [[nodiscard]] RouteResult route(std::span<const Demand> demands);

  /// As route(), but strictly read-only: every (src, dst) pair must already
  /// be cached (via warm() or earlier routing), otherwise a contract
  /// violation is raised. Safe to call from many threads at once; results
  /// are bit-identical to route() for the same inputs.
  [[nodiscard]] RouteResult route_warmed(std::span<const Demand> demands,
                                         std::span<const double> capacity_gbps) const;

  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] std::size_t k_paths() const { return k_paths_; }

  /// Read-only cache lookup: the candidate paths for a pair, or nullptr if
  /// the pair was never warmed. Never inserts, so it is safe during an
  /// active sweep (the incremental replay engine resolves its per-demand
  /// path pointers through this once, up front).
  [[nodiscard]] const std::vector<Path>* cached_paths(RegionId src, RegionId dst) const;

  /// Per-link capacities of the intact topology, indexed by LinkId.
  [[nodiscard]] std::vector<double> full_capacities() const;

 private:
  const Topology& topo_;
  std::size_t k_paths_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Path>> cache_;
  /// Count of live SweepGuards; paths() refuses cache insertion while > 0.
  mutable std::atomic<int> active_sweeps_{0};
};

}  // namespace netent::topology
