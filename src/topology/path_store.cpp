#include "topology/path_store.h"

#include "common/check.h"

namespace netent::topology {

PathStore::PathStore(std::size_t region_count)
    : region_count_(region_count),
      pair_slot_(region_count * region_count, kNoSlot) {
  link_off_.push_back(0);
}

PathList PathStore::insert(RegionId src, RegionId dst, std::span<const Path> paths) {
  NETENT_EXPECTS(src.value() < region_count_ && dst.value() < region_count_);
  std::uint32_t& slot = pair_slot_[pair_id(src, dst)];
  NETENT_EXPECTS(slot == kNoSlot && "path set already compiled for this pair");
  slot = static_cast<std::uint32_t>(path_begin_.size());
  const auto first_path = static_cast<std::uint32_t>(cost_.size());
  path_begin_.push_back(first_path);
  path_count_.push_back(static_cast<std::uint32_t>(paths.size()));
  for (const Path& path : paths) {
    links_.insert(links_.end(), path.links.begin(), path.links.end());
    link_off_.push_back(static_cast<std::uint32_t>(links_.size()));
    cost_.push_back(path.cost);
  }
  return PathList(this, first_path, static_cast<std::uint32_t>(paths.size()));
}

}  // namespace netent::topology
