#include "topology/path_store.h"

#include "common/check.h"

namespace netent::topology {

PathStore::PathStore(std::size_t region_count)
    : region_count_(region_count),
      pair_slot_(region_count * region_count, kNoSlot) {
  link_off_.push_back(0);
}

std::uint32_t PathStore::append_run(std::span<const Path> paths) {
  const auto first_path = static_cast<std::uint32_t>(cost_.size());
  for (const Path& path : paths) {
    links_.insert(links_.end(), path.links.begin(), path.links.end());
    link_off_.push_back(static_cast<std::uint32_t>(links_.size()));
    cost_.push_back(path.cost);
  }
  return first_path;
}

PathList PathStore::insert(RegionId src, RegionId dst, std::span<const Path> paths) {
  NETENT_EXPECTS(src.value() < region_count_ && dst.value() < region_count_);
  std::uint32_t& slot = pair_slot_[pair_id(src, dst)];
  NETENT_EXPECTS(slot == kNoSlot && "path set already compiled for this pair");
  slot = static_cast<std::uint32_t>(path_begin_.size());
  const std::uint32_t first_path = append_run(paths);
  path_begin_.push_back(first_path);
  path_count_.push_back(static_cast<std::uint32_t>(paths.size()));
  pair_of_slot_.push_back(PairKey{src, dst});
  return PathList(this, first_path, static_cast<std::uint32_t>(paths.size()));
}

PathList PathStore::replace(RegionId src, RegionId dst, std::span<const Path> paths) {
  NETENT_EXPECTS(src.value() < region_count_ && dst.value() < region_count_);
  const std::uint32_t slot = pair_slot_[pair_id(src, dst)];
  if (slot == kNoSlot) return insert(src, dst, paths);

  // The old run becomes garbage: count its link entries, repoint the slot.
  const std::uint32_t old_first = path_begin_[slot];
  const std::uint32_t old_count = path_count_[slot];
  garbage_links_ += link_off_[old_first + old_count] - link_off_[old_first];

  const std::uint32_t first_path = append_run(paths);
  path_begin_[slot] = first_path;
  path_count_[slot] = static_cast<std::uint32_t>(paths.size());
  return PathList(this, first_path, static_cast<std::uint32_t>(paths.size()));
}

void PathStore::compact() {
  if (garbage_links_ == 0) return;

  std::vector<std::uint32_t> new_begin;
  new_begin.reserve(path_begin_.size());
  std::vector<std::uint32_t> new_off;
  std::vector<LinkId> new_links;
  new_links.reserve(links_.size() - garbage_links_);
  std::vector<double> new_cost;
  new_off.push_back(0);

  for (std::size_t slot = 0; slot < path_begin_.size(); ++slot) {
    const std::uint32_t first = path_begin_[slot];
    new_begin.push_back(static_cast<std::uint32_t>(new_cost.size()));
    for (std::uint32_t p = 0; p < path_count_[slot]; ++p) {
      const std::uint32_t path = first + p;
      const std::uint32_t begin = link_off_[path];
      const std::uint32_t end = link_off_[path + 1];
      new_links.insert(new_links.end(), links_.begin() + begin, links_.begin() + end);
      new_off.push_back(static_cast<std::uint32_t>(new_links.size()));
      new_cost.push_back(cost_[path]);
    }
  }

  path_begin_ = std::move(new_begin);
  link_off_ = std::move(new_off);
  links_ = std::move(new_links);
  cost_ = std::move(new_cost);
  garbage_links_ = 0;
}

}  // namespace netent::topology
