#include "topology/paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "common/check.h"

namespace netent::topology {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra with an extra per-call ban list of links and regions, needed by
/// Yen's spur-path computation.
std::optional<Path> dijkstra(const Topology& topo, RegionId src, RegionId dst,
                             const LinkFilter& filter, const std::vector<bool>& banned_links,
                             const std::vector<bool>& banned_regions) {
  const std::size_t n = topo.region_count();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n, LinkId(0));
  std::vector<bool> has_via(n, false);

  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src.value()] = 0.0;
  heap.emplace(0.0, src.value());

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst.value()) break;
    for (const LinkId lid : topo.out_links(RegionId(u))) {
      if (banned_links[lid.value()]) continue;
      const Link& link = topo.link(lid);
      if (banned_regions[link.dst.value()]) continue;
      if (!filter(link)) continue;
      const double nd = d + 1.0;
      if (nd < dist[link.dst.value()]) {
        dist[link.dst.value()] = nd;
        via[link.dst.value()] = lid;
        has_via[link.dst.value()] = true;
        heap.emplace(nd, link.dst.value());
      }
    }
  }

  if (dist[dst.value()] == kInf) return std::nullopt;
  Path path;
  path.cost = dist[dst.value()];
  for (RegionId at = dst; at != src;) {
    NETENT_ENSURES(has_via[at.value()]);
    const LinkId lid = via[at.value()];
    path.links.push_back(lid);
    at = topo.link(lid).src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

}  // namespace

LinkFilter accept_all_links() {
  return [](const Link&) { return true; };
}

LinkFilter usable_links(const Topology& topo) {
  return [&topo](const Link& link) { return !topo.link_retired(link.id); };
}

LinkFilter exclude_srlgs(std::vector<SrlgId> down) {
  std::sort(down.begin(), down.end());
  return [down = std::move(down)](const Link& link) {
    return !std::binary_search(down.begin(), down.end(), link.srlg);
  };
}

std::optional<Path> shortest_path(const Topology& topo, RegionId src, RegionId dst,
                                  const LinkFilter& filter) {
  NETENT_EXPECTS(src != dst);
  const std::vector<bool> no_links(topo.link_count(), false);
  const std::vector<bool> no_regions(topo.region_count(), false);
  return dijkstra(topo, src, dst, filter, no_links, no_regions);
}

std::vector<Path> k_shortest_paths(const Topology& topo, RegionId src, RegionId dst, std::size_t k,
                                   const LinkFilter& filter) {
  NETENT_EXPECTS(src != dst);
  NETENT_EXPECTS(k > 0);

  std::vector<Path> result;
  auto first = shortest_path(topo, src, dst, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by cost; ties broken by link sequence to keep the
  // algorithm deterministic.
  const auto path_less = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return std::lexicographical_compare(
        a.links.begin(), a.links.end(), b.links.begin(), b.links.end(),
        [](LinkId x, LinkId y) { return x.value() < y.value(); });
  };
  std::set<Path, decltype(path_less)> candidates(path_less);

  std::vector<bool> banned_links(topo.link_count(), false);
  std::vector<bool> banned_regions(topo.region_count(), false);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from every node of the previous path.
    RegionId spur_node = src;
    Path root;  // prefix of prev up to (not including) the spur link
    for (std::size_t i = 0; i < prev.links.size(); ++i) {
      std::fill(banned_links.begin(), banned_links.end(), false);
      std::fill(banned_regions.begin(), banned_regions.end(), false);

      // Ban the next link of every accepted/candidate path sharing this root.
      for (const Path& p : result) {
        if (p.links.size() > i &&
            std::equal(root.links.begin(), root.links.end(), p.links.begin())) {
          banned_links[p.links[i].value()] = true;
        }
      }
      // Ban root nodes (except the spur node) to keep paths simple.
      for (const LinkId lid : root.links) banned_regions[topo.link(lid).src.value()] = true;

      if (auto spur = dijkstra(topo, spur_node, dst, filter, banned_links, banned_regions)) {
        Path total;
        total.links = root.links;
        total.links.insert(total.links.end(), spur->links.begin(), spur->links.end());
        total.cost = root.cost + spur->cost;
        candidates.insert(std::move(total));
      }

      // Extend the root by one link and advance the spur node.
      const LinkId lid = prev.links[i];
      root.links.push_back(lid);
      root.cost += 1.0;
      spur_node = topo.link(lid).dst;
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace netent::topology
