// Max-flow between two regions (Dinic's algorithm). This is the admissible-
// bandwidth primitive of the risk simulator: under a failure scenario, the
// most traffic a pipe <src, dst> can push is the max-flow over the surviving
// residual capacities.
#pragma once

#include <span>

#include "common/types.h"
#include "common/units.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace netent::topology {

/// Maximum flow from `src` to `dst` using per-link capacities `residual`
/// (indexed by LinkId; pass link.capacity values for a fresh network) over
/// links accepted by `filter`.
[[nodiscard]] Gbps max_flow(const Topology& topo, RegionId src, RegionId dst,
                            std::span<const double> residual_gbps, const LinkFilter& filter);

/// Convenience overload using full link capacities.
[[nodiscard]] Gbps max_flow(const Topology& topo, RegionId src, RegionId dst,
                            const LinkFilter& filter);

}  // namespace netent::topology
