#include "topology/routing.h"

#include "common/placement_arena.h"

namespace netent::topology {

Router::Router(const Topology& topo, std::size_t k_paths)
    : topo_(topo), k_paths_(k_paths), store_(topo.region_count()) {
  NETENT_EXPECTS(k_paths > 0);
  full_caps_.resize(topo_.link_count());
  for (const Link& link : topo_.links()) full_caps_[link.id.value()] = link.capacity.value();
}

PathList Router::paths(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src != dst);
  if (const PathList cached = store_.find(src, dst); cached.valid()) return cached;
  NETENT_EXPECTS(active_sweeps_.load(std::memory_order_acquire) == 0 &&
                 "path-cache insertion during an active sweep");
  const std::vector<Path> computed = k_shortest_paths(topo_, src, dst, k_paths_, accept_all_links());
  return store_.insert(src, dst, computed);
}

void Router::warm(std::span<const Demand> demands) {
  for (const Demand& demand : demands) (void)paths(demand.src, demand.dst);
}

RouteResult Router::route(std::span<const Demand> demands,
                          std::span<const double> capacity_gbps) {
  warm(demands);
  return route_warmed(demands, capacity_gbps);
}

RouteResult Router::route_warmed(std::span<const Demand> demands,
                                 std::span<const double> capacity_gbps) const {
  RouteResult result;
  route_warmed_into(demands, capacity_gbps, result);
  return result;
}

void Router::route_warmed_into(std::span<const Demand> demands,
                               std::span<const double> capacity_gbps,
                               RouteResult& out) const {
  NETENT_EXPECTS(capacity_gbps.size() == topo_.link_count());

  out.demand_total = Gbps(0.0);
  out.placed_total = Gbps(0.0);
  out.placed_per_demand.clear();
  out.placed_per_demand.reserve(demands.size());
  out.link_load.assign(capacity_gbps.size(), 0.0);

  auto residual_loan = common::PlacementArena::local().doubles();
  std::vector<double>& residual = *residual_loan;
  residual.assign(capacity_gbps.begin(), capacity_gbps.end());

  for (const Demand& demand : demands) {
    out.demand_total += demand.amount;
    const PathList candidate_paths = cached_paths(demand.src, demand.dst);
    NETENT_EXPECTS(candidate_paths.valid());  // warm() must cover the pair
    const double placed =
        water_fill_demand(demand.amount.value(), candidate_paths, residual, out.link_load);
    out.placed_total += Gbps(placed);
    out.placed_per_demand.push_back(placed);
  }

  out.fully_placed = (out.demand_total - out.placed_total) <= Gbps(kPlacementEps);
}

RouteResult Router::route(std::span<const Demand> demands) {
  return route(demands, full_capacities());
}

}  // namespace netent::topology
