#include "topology/routing.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

namespace {
constexpr double kEps = 1e-6;
}

Router::Router(const Topology& topo, std::size_t k_paths) : topo_(topo), k_paths_(k_paths) {
  NETENT_EXPECTS(k_paths > 0);
}

const std::vector<Path>& Router::paths(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src != dst);
  const auto key = std::make_pair(src.value(), dst.value());
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, k_shortest_paths(topo_, src, dst, k_paths_, accept_all_links()))
             .first;
  }
  return it->second;
}

RouteResult Router::route(std::span<const Demand> demands, std::span<const double> capacity_gbps) {
  NETENT_EXPECTS(capacity_gbps.size() == topo_.link_count());

  RouteResult result;
  result.link_load.assign(topo_.link_count(), 0.0);
  result.placed_per_demand.reserve(demands.size());
  std::vector<double> residual(capacity_gbps.begin(), capacity_gbps.end());

  for (const Demand& demand : demands) {
    NETENT_EXPECTS(demand.amount >= Gbps(0));
    result.demand_total += demand.amount;
    double remaining = demand.amount.value();
    for (const Path& path : paths(demand.src, demand.dst)) {
      if (remaining <= kEps) break;
      // Bottleneck residual along this path.
      double bottleneck = remaining;
      for (const LinkId lid : path.links) bottleneck = std::min(bottleneck, residual[lid.value()]);
      if (bottleneck <= kEps) continue;
      for (const LinkId lid : path.links) {
        residual[lid.value()] -= bottleneck;
        result.link_load[lid.value()] += bottleneck;
      }
      remaining -= bottleneck;
      result.placed_total += Gbps(bottleneck);
    }
    result.placed_per_demand.push_back(demand.amount.value() - remaining);
  }

  result.fully_placed = (result.demand_total - result.placed_total) <= Gbps(kEps);
  return result;
}

RouteResult Router::route(std::span<const Demand> demands) {
  const auto caps = full_capacities();
  return route(demands, caps);
}

std::vector<double> Router::full_capacities() const {
  std::vector<double> caps(topo_.link_count());
  for (const Link& link : topo_.links()) caps[link.id.value()] = link.capacity.value();
  return caps;
}

}  // namespace netent::topology
