#include "topology/routing.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

namespace {
constexpr double kEps = 1e-6;
}

Router::Router(const Topology& topo, std::size_t k_paths) : topo_(topo), k_paths_(k_paths) {
  NETENT_EXPECTS(k_paths > 0);
}

const std::vector<Path>& Router::paths(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src != dst);
  const auto key = std::make_pair(src.value(), dst.value());
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, k_shortest_paths(topo_, src, dst, k_paths_, accept_all_links()))
             .first;
  }
  return it->second;
}

void Router::warm(std::span<const Demand> demands) {
  for (const Demand& demand : demands) (void)paths(demand.src, demand.dst);
}

const std::vector<Path>* Router::cached_paths(RegionId src, RegionId dst) const {
  const auto it = cache_.find(std::make_pair(src.value(), dst.value()));
  return it == cache_.end() ? nullptr : &it->second;
}

double Router::place_demand(const Demand& demand, const std::vector<Path>& candidate_paths,
                            PlacementState& state) {
  NETENT_EXPECTS(demand.amount >= Gbps(0));
  double remaining = demand.amount.value();
  for (const Path& path : candidate_paths) {
    if (remaining <= kEps) break;
    // Bottleneck residual along this path.
    double bottleneck = remaining;
    for (const LinkId lid : path.links) {
      bottleneck = std::min(bottleneck, state.residual[lid.value()]);
    }
    if (bottleneck <= kEps) continue;
    for (const LinkId lid : path.links) {
      state.residual[lid.value()] -= bottleneck;
      state.link_load[lid.value()] += bottleneck;
    }
    remaining -= bottleneck;
  }
  return demand.amount.value() - remaining;
}

RouteResult Router::route(std::span<const Demand> demands,
                          std::span<const double> capacity_gbps) {
  warm(demands);
  return route_warmed(demands, capacity_gbps);
}

RouteResult Router::route_warmed(std::span<const Demand> demands,
                                 std::span<const double> capacity_gbps) const {
  NETENT_EXPECTS(capacity_gbps.size() == topo_.link_count());

  RouteResult result;
  result.placed_per_demand.reserve(demands.size());
  PlacementState state(capacity_gbps);

  for (const Demand& demand : demands) {
    result.demand_total += demand.amount;
    const std::vector<Path>* candidate_paths = cached_paths(demand.src, demand.dst);
    NETENT_EXPECTS(candidate_paths != nullptr);  // warm() must cover the pair
    const double placed = place_demand(demand, *candidate_paths, state);
    result.placed_total += Gbps(placed);
    result.placed_per_demand.push_back(placed);
  }

  result.link_load = std::move(state.link_load);
  result.fully_placed = (result.demand_total - result.placed_total) <= Gbps(kEps);
  return result;
}

RouteResult Router::route(std::span<const Demand> demands) {
  const auto caps = full_capacities();
  return route(demands, caps);
}

std::vector<double> Router::full_capacities() const {
  std::vector<double> caps(topo_.link_count());
  for (const Link& link : topo_.links()) caps[link.id.value()] = link.capacity.value();
  return caps;
}

}  // namespace netent::topology
