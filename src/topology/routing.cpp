#include "topology/routing.h"

#include <algorithm>

#include "common/check.h"

namespace netent::topology {

namespace {
constexpr double kEps = 1e-6;
}

double water_fill_demand(double amount_gbps, std::span<const Path> candidate_paths,
                         std::span<double> residual, std::span<double> link_load,
                         std::vector<std::pair<LinkId, double>>* op_log,
                         std::size_t* scanned_paths_out,
                         std::vector<double>* path_placed_out) {
  NETENT_EXPECTS(amount_gbps >= 0.0);
  if (path_placed_out != nullptr) path_placed_out->assign(candidate_paths.size(), 0.0);
  double remaining = amount_gbps;
  std::size_t scanned = 0;
  for (const Path& path : candidate_paths) {
    if (remaining <= kEps) break;
    ++scanned;
    // Bottleneck residual along this path.
    double bottleneck = remaining;
    for (const LinkId lid : path.links) {
      bottleneck = std::min(bottleneck, residual[lid.value()]);
    }
    if (bottleneck <= kEps) continue;
    if (path_placed_out != nullptr) {
      (*path_placed_out)[static_cast<std::size_t>(&path - candidate_paths.data())] = bottleneck;
    }
    for (const LinkId lid : path.links) {
      residual[lid.value()] -= bottleneck;
      if (!link_load.empty()) link_load[lid.value()] += bottleneck;
      if (op_log != nullptr) op_log->emplace_back(lid, bottleneck);
    }
    remaining -= bottleneck;
  }
  if (scanned_paths_out != nullptr) *scanned_paths_out = scanned;
  return amount_gbps - remaining;
}

Router::Router(const Topology& topo, std::size_t k_paths) : topo_(topo), k_paths_(k_paths) {
  NETENT_EXPECTS(k_paths > 0);
}

const std::vector<Path>& Router::paths(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src != dst);
  const auto key = std::make_pair(src.value(), dst.value());
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    NETENT_EXPECTS(active_sweeps_.load(std::memory_order_acquire) == 0 &&
                   "path-cache insertion during an active sweep");
    it = cache_.emplace(key, k_shortest_paths(topo_, src, dst, k_paths_, accept_all_links()))
             .first;
  }
  return it->second;
}

void Router::warm(std::span<const Demand> demands) {
  for (const Demand& demand : demands) (void)paths(demand.src, demand.dst);
}

const std::vector<Path>* Router::cached_paths(RegionId src, RegionId dst) const {
  const auto it = cache_.find(std::make_pair(src.value(), dst.value()));
  return it == cache_.end() ? nullptr : &it->second;
}

RouteResult Router::route(std::span<const Demand> demands,
                          std::span<const double> capacity_gbps) {
  warm(demands);
  return route_warmed(demands, capacity_gbps);
}

RouteResult Router::route_warmed(std::span<const Demand> demands,
                                 std::span<const double> capacity_gbps) const {
  NETENT_EXPECTS(capacity_gbps.size() == topo_.link_count());

  RouteResult result;
  result.placed_per_demand.reserve(demands.size());
  PlacementState state(capacity_gbps);

  for (const Demand& demand : demands) {
    result.demand_total += demand.amount;
    const std::vector<Path>* candidate_paths = cached_paths(demand.src, demand.dst);
    NETENT_EXPECTS(candidate_paths != nullptr);  // warm() must cover the pair
    const double placed =
        water_fill_demand(demand.amount.value(), *candidate_paths, state.residual, state.link_load);
    result.placed_total += Gbps(placed);
    result.placed_per_demand.push_back(placed);
  }

  result.link_load = std::move(state.link_load);
  result.fully_placed = (result.demand_total - result.placed_total) <= Gbps(kEps);
  return result;
}

RouteResult Router::route(std::span<const Demand> demands) {
  const auto caps = full_capacities();
  return route(demands, caps);
}

std::vector<double> Router::full_capacities() const {
  std::vector<double> caps(topo_.link_count());
  for (const Link& link : topo_.links()) caps[link.id.value()] = link.capacity.value();
  return caps;
}

}  // namespace netent::topology
