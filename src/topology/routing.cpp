#include "topology/routing.h"

#include <limits>
#include <queue>

#include "common/placement_arena.h"

namespace netent::topology {

Router::Router(const Topology& topo, std::size_t k_paths)
    : topo_(topo),
      k_paths_(k_paths),
      region_count_(topo.region_count()),
      store_(topo.region_count()),
      synced_epoch_(topo.epoch()) {
  NETENT_EXPECTS(k_paths > 0);
  full_caps_.resize(topo_.link_count());
  for (const Link& link : topo_.links()) {
    full_caps_[link.id.value()] = topo_.effective_capacity(link.id).value();
  }
}

PathList Router::paths(RegionId src, RegionId dst) {
  NETENT_EXPECTS(src != dst);
  if (const PathList cached = store_.find(src, dst); cached.valid()) return cached;
  NETENT_EXPECTS(active_sweeps_.load(std::memory_order_acquire) == 0 &&
                 "path-cache insertion during an active sweep");
  const std::vector<Path> computed = k_shortest_paths(topo_, src, dst, k_paths_, usable_links(topo_));
  return store_.insert(src, dst, computed);
}

void Router::warm(std::span<const Demand> demands) {
  for (const Demand& demand : demands) (void)paths(demand.src, demand.dst);
}

RouteResult Router::route(std::span<const Demand> demands,
                          std::span<const double> capacity_gbps) {
  warm(demands);
  return route_warmed(demands, capacity_gbps);
}

RouteResult Router::route_warmed(std::span<const Demand> demands,
                                 std::span<const double> capacity_gbps) const {
  RouteResult result;
  route_warmed_into(demands, capacity_gbps, result);
  return result;
}

void Router::route_warmed_into(std::span<const Demand> demands,
                               std::span<const double> capacity_gbps,
                               RouteResult& out) const {
  NETENT_EXPECTS(capacity_gbps.size() == topo_.link_count());

  out.demand_total = Gbps(0.0);
  out.placed_total = Gbps(0.0);
  out.placed_per_demand.clear();
  out.placed_per_demand.reserve(demands.size());
  out.link_load.assign(capacity_gbps.size(), 0.0);

  auto residual_loan = common::PlacementArena::local().doubles();
  std::vector<double>& residual = *residual_loan;
  residual.assign(capacity_gbps.begin(), capacity_gbps.end());

  for (const Demand& demand : demands) {
    out.demand_total += demand.amount;
    const PathList candidate_paths = cached_paths(demand.src, demand.dst);
    NETENT_EXPECTS(candidate_paths.valid());  // warm() must cover the pair
    const double placed =
        water_fill_demand(demand.amount.value(), candidate_paths, residual, out.link_load);
    out.placed_total += Gbps(placed);
    out.placed_per_demand.push_back(placed);
  }

  out.fully_placed = (out.demand_total - out.placed_total) <= Gbps(kPlacementEps);
}

RouteResult Router::route(std::span<const Demand> demands) {
  return route(demands, full_capacities());
}

namespace {

constexpr std::uint32_t kUnreached = 0xffffffffu;

/// Hop-count BFS from `root` over links selected by `usable`. The link set
/// is a symmetric digraph (every fiber contributes both directions with the
/// same lifecycle state), so distances-from double as distances-to.
void bfs_hops(const Topology& topo, RegionId root,
              const std::function<bool(const Link&)>& usable,
              std::vector<std::uint32_t>& dist) {
  dist.assign(topo.region_count(), kUnreached);
  dist[root.value()] = 0;
  std::queue<RegionId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const RegionId u = frontier.front();
    frontier.pop();
    for (const LinkId lid : topo.out_links(u)) {
      const Link& link = topo.link(lid);
      if (!usable(link)) continue;
      if (dist[link.dst.value()] != kUnreached) continue;
      dist[link.dst.value()] = dist[u.value()] + 1;
      frontier.push(link.dst);
    }
  }
}

double hops_or_inf(std::uint32_t d) {
  return d == kUnreached ? std::numeric_limits<double>::infinity() : static_cast<double>(d);
}

/// Bit-exact equality of a compiled path list against freshly computed
/// paths (same count, same costs, same link sequences).
bool same_paths(const PathList& old_list, std::span<const Path> fresh) {
  if (old_list.size() != fresh.size()) return false;
  for (std::size_t p = 0; p < fresh.size(); ++p) {
    const PathView view = old_list[p];
    if (view.cost != fresh[p].cost) return false;
    if (view.links.size() != fresh[p].links.size()) return false;
    for (std::size_t i = 0; i < view.links.size(); ++i) {
      if (view.links[i] != fresh[p].links[i]) return false;
    }
  }
  return true;
}

}  // namespace

void Router::resync_topology(TopologyResyncStats* stats,
                             std::vector<std::pair<RegionId, RegionId>>* changed_pairs) {
  NETENT_EXPECTS(active_sweeps_.load(std::memory_order_acquire) == 0 &&
                 "topology resync during an active sweep");
  NETENT_EXPECTS(topo_.region_count() == region_count_ &&
                 "regions are fixed once a Router is attached");

  TopologyResyncStats st;
  st.from_epoch = synced_epoch_;
  st.to_epoch = topo_.epoch();
  const std::span<const MutationRecord> delta = topo_.mutation_log().since(synced_epoch_);
  st.mutations = delta.size();

  // Effective capacities always refresh (capacity-only mutations move them).
  full_caps_.resize(topo_.link_count());
  for (const Link& link : topo_.links()) {
    full_caps_[link.id.value()] = topo_.effective_capacity(link.id).value();
  }

  // Structural records are the only ones that can change path sets: KSP
  // costs are hop counts, independent of capacities.
  std::vector<const MutationRecord*> structural;
  std::vector<char> span_retired(topo_.link_count(), 0);
  for (const MutationRecord& rec : delta) {
    if (!rec.structural()) continue;
    structural.push_back(&rec);
    if (rec.kind == MutationKind::retire_fiber) {
      span_retired[rec.link.value()] = 1;
      span_retired[topo_.link(rec.link).reverse.value()] = 1;
    }
  }
  st.structural = structural.size();

  if (!structural.empty() && store_.pair_count() > 0) {
    // Dirty predicate: pair (s, t) can have changed iff some shortest route
    // s -> fiber -> t is no longer than the pair's k-th best compiled cost.
    // Distances are computed on the SUPERGRAPH (final usable links plus the
    // fibers retired within this delta): it contains every intermediate
    // epoch's link set, so the bound is <= any intermediate epoch's bound
    // and the marking is a superset of every step-by-step marking — sound
    // for batched logs. Recompiling a clean-in-truth pair is harmless: the
    // deterministic KSP reproduces the identical path set and we skip the
    // replace.
    const auto usable_super = [this, &span_retired](const Link& link) {
      return !topo_.link_retired(link.id) || span_retired[link.id.value()] != 0;
    };

    const std::span<const PathStore::PairKey> pairs = store_.pairs();
    std::vector<char> dirty(pairs.size(), 0);
    std::vector<std::uint32_t> dist_a;
    std::vector<std::uint32_t> dist_b;
    for (const MutationRecord* rec : structural) {
      const Link& fiber = topo_.link(rec->link);
      bfs_hops(topo_, fiber.src, usable_super, dist_a);
      bfs_hops(topo_, fiber.dst, usable_super, dist_b);
      for (std::size_t slot = 0; slot < pairs.size(); ++slot) {
        if (dirty[slot] != 0) continue;
        const RegionId s = pairs[slot].src;
        const RegionId t = pairs[slot].dst;
        const double through = std::min(
            hops_or_inf(dist_a[s.value()]) + 1.0 + hops_or_inf(dist_b[t.value()]),
            hops_or_inf(dist_b[s.value()]) + 1.0 + hops_or_inf(dist_a[t.value()]));
        const PathList compiled = store_.find(s, t);
        if (compiled.size() < k_paths_) {
          // Fewer than k simple paths compiled: any finite route through the
          // fiber could add or remove one.
          if (through != std::numeric_limits<double>::infinity()) dirty[slot] = 1;
        } else if (through <= compiled[compiled.size() - 1].cost) {
          dirty[slot] = 1;
        }
      }
    }
    st.pairs_checked = pairs.size();

    for (std::size_t slot = 0; slot < pairs.size(); ++slot) {
      if (dirty[slot] == 0) continue;
      ++st.pairs_dirty;
      const RegionId s = pairs[slot].src;
      const RegionId t = pairs[slot].dst;
      const std::vector<Path> fresh = k_shortest_paths(topo_, s, t, k_paths_, usable_links(topo_));
      if (same_paths(store_.find(s, t), fresh)) continue;
      store_.replace(s, t, fresh);
      ++st.pairs_changed;
      if (changed_pairs != nullptr) changed_pairs->emplace_back(s, t);
    }

    const std::size_t live = store_.link_entry_count() - store_.garbage_link_entries();
    if (store_.garbage_link_entries() > live) {
      store_.compact();
      st.compacted = true;
    }
  }

  synced_epoch_ = topo_.epoch();
  if (stats != nullptr) *stats = st;
}

}  // namespace netent::topology
