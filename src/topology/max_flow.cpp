#include "topology/max_flow.h"

#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"

namespace netent::topology {

namespace {

/// Dinic over an explicit residual-edge arena. Each usable topology link
/// contributes a forward edge plus a zero-capacity reverse companion.
class Dinic {
 public:
  explicit Dinic(std::size_t node_count) : head_(node_count, -1), level_(node_count), it_(node_count) {}

  void add_edge(std::uint32_t u, std::uint32_t v, double cap) {
    edges_.push_back({v, head_[u], cap});
    head_[u] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({u, head_[v], 0.0});
    head_[v] = static_cast<int>(edges_.size()) - 1;
  }

  double run(std::uint32_t s, std::uint32_t t) {
    double flow = 0.0;
    while (bfs(s, t)) {
      it_ = head_;
      while (true) {
        const double pushed = dfs(s, t, std::numeric_limits<double>::infinity());
        if (pushed <= 0.0) break;
        flow += pushed;
      }
    }
    return flow;
  }

 private:
  struct Edge {
    std::uint32_t to;
    int next;
    double cap;
  };

  bool bfs(std::uint32_t s, std::uint32_t t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<std::uint32_t> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap > 1e-12 && level_[edges_[e].to] == -1) {
          level_[edges_[e].to] = level_[u] + 1;
          q.push(edges_[e].to);
        }
      }
    }
    return level_[t] != -1;
  }

  double dfs(std::uint32_t u, std::uint32_t t, double limit) {
    if (u == t) return limit;
    for (int& e = it_[u]; e != -1; e = edges_[e].next) {
      Edge& edge = edges_[e];
      if (edge.cap > 1e-12 && level_[edge.to] == level_[u] + 1) {
        const double pushed = dfs(edge.to, t, std::min(limit, edge.cap));
        if (pushed > 0.0) {
          edge.cap -= pushed;
          edges_[e ^ 1].cap += pushed;
          return pushed;
        }
      }
    }
    return 0.0;
  }

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> it_;
};

}  // namespace

Gbps max_flow(const Topology& topo, RegionId src, RegionId dst,
              std::span<const double> residual_gbps, const LinkFilter& filter) {
  NETENT_EXPECTS(src != dst);
  NETENT_EXPECTS(residual_gbps.size() == topo.link_count());

  Dinic dinic(topo.region_count());
  for (const Link& link : topo.links()) {
    const double cap = residual_gbps[link.id.value()];
    if (cap > 0.0 && filter(link)) {
      dinic.add_edge(link.src.value(), link.dst.value(), cap);
    }
  }
  return Gbps(dinic.run(src.value(), dst.value()));
}

Gbps max_flow(const Topology& topo, RegionId src, RegionId dst, const LinkFilter& filter) {
  std::vector<double> caps(topo.link_count());
  for (const Link& link : topo.links()) caps[link.id.value()] = link.capacity.value();
  return max_flow(topo, src, dst, caps, filter);
}

}  // namespace netent::topology
