// Shortest-path machinery over the backbone: Dijkstra and Yen's k-shortest
// simple paths. Used by the routing engine to build candidate path sets for
// traffic-matrix placement and availability computation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "topology/topology.h"

namespace netent::topology {

/// A simple path expressed as a sequence of directed link ids.
struct Path {
  std::vector<LinkId> links;
  double cost = 0.0;

  [[nodiscard]] bool empty() const { return links.empty(); }
  [[nodiscard]] std::size_t hops() const { return links.size(); }
};

/// Predicate selecting which links are usable (e.g. excludes failed SRLGs).
/// Returning true means the link may carry traffic.
using LinkFilter = std::function<bool(const Link&)>;

/// Accepts every link.
[[nodiscard]] LinkFilter accept_all_links();

/// Accepts links that are in service: rejects retired fibers (the topology-
/// lifecycle exclusion — drained/struck links stay path-eligible, they just
/// carry zero effective capacity). Captures `topo` by reference.
[[nodiscard]] LinkFilter usable_links(const Topology& topo);

/// Rejects links whose SRLG appears in `down` (sorted or unsorted list).
[[nodiscard]] LinkFilter exclude_srlgs(std::vector<SrlgId> down);

/// Dijkstra shortest path by hop count (unit link cost). Returns nullopt if
/// `dst` is unreachable under `filter`.
[[nodiscard]] std::optional<Path> shortest_path(const Topology& topo, RegionId src, RegionId dst,
                                                const LinkFilter& filter);

/// Yen's algorithm: up to k loop-free shortest paths in nondecreasing cost
/// order. Fewer than k are returned when the graph runs out of simple paths.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Topology& topo, RegionId src, RegionId dst,
                                                 std::size_t k, const LinkFilter& filter);

}  // namespace netent::topology
