// Flat, cache-friendly storage for candidate path sets — the data the
// placement hot loop actually walks. The legacy layout was a
// std::map<(src,dst), std::vector<Path>> of per-path heap vectors: every
// demand paid an O(log pairs) tree descent and every path a pointer chase to
// a separately allocated link list. The PathStore compiles the same path
// sets into CSR (compressed sparse row) form:
//
//     pair_slot_[src * regions + dst]  ── dense O(1) pair-id lookup ──┐
//                                                                    v
//     path_begin_/path_count_[slot]  ── the pair's contiguous path range
//     link_off_[path]                ── each path's range in the flat array
//     links_[...]                    ── ONE flat LinkId array, all paths
//     cost_[path]                    ── SoA per-path metadata
//
// so the inner water-fill walks one contiguous LinkId sequence per path set
// with no tree nodes and no per-path allocations. Path sets are appended
// (lazily or via Router::warm()); link order inside each path and path order
// inside each set are preserved exactly, so every float-op sequence — and
// therefore every routing result — is bit-identical to the legacy layout
// (tests/test_path_store.cpp pins this across randomized topologies).
//
// Lifetime rules: a PathList holds indices plus a store pointer and stays
// valid across later insertions (the arrays are append-only). A PathView's
// spans point into the flat arrays and are invalidated by insertion — take
// views only while no insertion can happen (e.g. under Router::SweepGuard,
// or within one placement pass).
//
// Topology lifecycle: `replace()` repoints a pair's slot at a freshly
// appended run, leaving the old run in place as garbage — previously taken
// PathLists for that pair stay memory-safe but STALE (they keep yielding the
// old content); re-`find()` after a resync. `compact()` rewrites the flat
// arrays without the garbage and invalidates every outstanding PathList; it
// is only called at Router::resync_topology boundaries, where no handles are
// live by contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "topology/paths.h"

namespace netent::topology {

class PathStore;

/// View of one stored path: a span over the store's flat link array plus the
/// SoA metadata. Mirrors the Path interface the water-fill template needs.
struct PathView {
  std::span<const LinkId> links;
  double cost = 0.0;

  [[nodiscard]] bool empty() const { return links.empty(); }
  [[nodiscard]] std::size_t hops() const { return links.size(); }
};

/// Random-access range of one (src, dst) pair's candidate paths. A default-
/// constructed PathList is invalid (the "pair never compiled" sentinel the
/// legacy nullptr expressed). Cheap to copy; stays valid across store
/// insertions, unlike the PathViews it yields.
class PathList {
 public:
  PathList() = default;

  [[nodiscard]] bool valid() const { return store_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] inline PathView operator[](std::size_t p) const;

  class Iterator {
   public:
    Iterator(const PathList* list, std::size_t p) : list_(list), p_(p) {}
    PathView operator*() const { return (*list_)[p_]; }
    Iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return p_ != other.p_; }

   private:
    const PathList* list_;
    std::size_t p_;
  };
  [[nodiscard]] Iterator begin() const { return Iterator(this, 0); }
  [[nodiscard]] Iterator end() const { return Iterator(this, count_); }

 private:
  friend class PathStore;
  PathList(const PathStore* store, std::uint32_t first_path, std::uint32_t count)
      : store_(store), first_path_(first_path), count_(count) {}

  const PathStore* store_ = nullptr;
  std::uint32_t first_path_ = 0;  ///< global path index of the set's head
  std::uint32_t count_ = 0;
};

/// The CSR store itself. Path sets are compiled in once per (src, dst) pair
/// and read from then on; topology resync may `replace()` a pair's set and
/// eventually `compact()` the accumulated garbage.
class PathStore {
 public:
  /// One compiled pair, in slot order (see pairs()).
  struct PairKey {
    RegionId src;
    RegionId dst;
  };

  explicit PathStore(std::size_t region_count);

  [[nodiscard]] bool contains(RegionId src, RegionId dst) const {
    return pair_slot_[pair_id(src, dst)] != kNoSlot;
  }

  /// The pair's path list, or an invalid PathList when the pair was never
  /// compiled. O(1): one dense-table load.
  [[nodiscard]] PathList find(RegionId src, RegionId dst) const {
    const std::uint32_t slot = pair_slot_[pair_id(src, dst)];
    if (slot == kNoSlot) return PathList();
    return PathList(this, path_begin_[slot], path_count_[slot]);
  }

  /// Compiles `paths` (in order) as the pair's path set. The pair must not
  /// already be present.
  PathList insert(RegionId src, RegionId dst, std::span<const Path> paths);

  /// Re-compiles the pair's path set (inserts when absent). The old run — if
  /// any — becomes garbage: previously taken PathLists for the pair keep
  /// reading it (stale but memory-safe) until compact().
  PathList replace(RegionId src, RegionId dst, std::span<const Path> paths);

  /// Every compiled pair, indexed by slot.
  [[nodiscard]] std::span<const PairKey> pairs() const { return pair_of_slot_; }

  /// Link entries held by replaced (garbage) runs; live entries are
  /// link_entry_count() - garbage_link_entries().
  [[nodiscard]] std::size_t garbage_link_entries() const { return garbage_links_; }

  /// Rewrites the flat arrays without garbage runs. Invalidates every
  /// outstanding PathList/PathView; pair slots and per-pair content are
  /// unchanged. No-op when there is no garbage.
  void compact();

  [[nodiscard]] std::size_t pair_count() const { return path_begin_.size(); }
  /// Paths / flat link entries currently stored, INCLUDING garbage runs.
  [[nodiscard]] std::size_t path_count() const { return cost_.size(); }
  [[nodiscard]] std::size_t link_entry_count() const { return links_.size(); }

 private:
  friend class PathList;

  [[nodiscard]] std::size_t pair_id(RegionId src, RegionId dst) const {
    return static_cast<std::size_t>(src.value()) * region_count_ + dst.value();
  }

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Appends `paths` as a fresh run and returns its first global path index.
  std::uint32_t append_run(std::span<const Path> paths);

  std::size_t region_count_;
  std::vector<std::uint32_t> pair_slot_;   ///< dense pair-id -> slot (kNoSlot = absent)
  std::vector<std::uint32_t> path_begin_;  ///< per slot: first global path index
  std::vector<std::uint32_t> path_count_;  ///< per slot: number of paths
  std::vector<PairKey> pair_of_slot_;      ///< per slot: the (src, dst) pair
  std::vector<std::uint32_t> link_off_;    ///< per global path: offset into links_ (+1 entry)
  std::vector<LinkId> links_;              ///< one flat link array for every path
  std::vector<double> cost_;               ///< per global path (SoA metadata)
  std::size_t garbage_links_ = 0;          ///< link entries in replaced runs
};

inline PathView PathList::operator[](std::size_t p) const {
  const std::size_t path = first_path_ + p;
  const std::uint32_t begin = store_->link_off_[path];
  const std::uint32_t end = store_->link_off_[path + 1];
  return PathView{std::span<const LinkId>(store_->links_.data() + begin, end - begin),
                  store_->cost_[path]};
}

}  // namespace netent::topology
