// Synthetic WAN backbone generator (substitute for Meta's production
// backbone, see DESIGN.md §1). Produces a Meta-like topology: a biconnected
// continental ring of regions with random express chords, heterogeneous
// region capacity (each DC is built differently, §3.1 challenge 2), parallel
// fibers on fat adjacencies, and per-fiber reliability parameters.
#pragma once

#include "common/rng.h"
#include "topology/topology.h"

namespace netent::topology {

struct GeneratorConfig {
  std::size_t region_count = 16;
  double dc_fraction = 0.6;           ///< remaining regions are PoPs
  Gbps base_capacity = Gbps(400);     ///< median per-direction fiber capacity
  double capacity_sigma = 0.5;        ///< lognormal spread of fiber capacity
  double chord_probability = 0.25;    ///< probability of an express chord per non-adjacent pair
  std::size_t max_parallel_fibers = 3; ///< fat adjacencies get up to this many fibers
  /// Probability that an additional parallel fiber is laid in the same
  /// conduit as the adjacency's first fiber (correlated failure).
  double shared_conduit_probability = 0.0;
  double mtbf_hours_min = 1000.0;     ///< fiber reliability range
  double mtbf_hours_max = 20000.0;
  double mttr_hours_min = 4.0;
  double mttr_hours_max = 48.0;
};

/// Builds a random backbone. Deterministic for a fixed config and rng state.
/// Guarantees: at least `region_count` regions, ring connectivity (every
/// region pair connected even after any single fiber cut on the ring, since
/// the ring plus chords is 2-edge-connected w.r.t. SRLGs).
[[nodiscard]] Topology generate_backbone(const GeneratorConfig& config, Rng& rng);

/// The five-region example of Figure 6 (regions A..E, generous uniform
/// capacity) used by the §4.2 worked example and the quickstart.
[[nodiscard]] Topology figure6_topology();

}  // namespace netent::topology
