// EntitlementManager: the end-to-end §3.2 workflow behind one API.
//
//   observed pipe histories
//     -> (1) service demand forecast        (forecast::DemandForecaster)
//     -> (2) hose contract representation   (hose::aggregate_to_hoses,
//            optionally segmented            hose::two_segment_split)
//     -> (3) contract approval              (approval::ApprovalEngine,
//            risk-aware, QoS priorities, high/low-touch)
//     -> (4) contracts in the database      (core::ContractDb), ready for
//            run-time enforcement            (enforce::HostAgent via
//            ContractDb::query_adapter)
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "approval/approval.h"
#include "common/rng.h"
#include "core/contract_db.h"
#include "forecast/sli.h"
#include "hose/balance.h"
#include "traffic/fleet.h"

namespace netent::core {

/// Observed daily history of one pipe (one NPG, QoS, src->dst), the §4.1
/// input. `daily` holds one aggregate per day (oldest first); `holidays`
/// lists holiday day indices, which may extend past the history into the
/// forecast horizon.
struct PipeHistory {
  NpgId npg;
  QosClass qos = QosClass::c4_high;
  RegionId src;
  RegionId dst;
  std::vector<double> daily;
  std::vector<int> holidays;
};

struct ManagerConfig {
  forecast::ForecasterConfig forecaster;
  approval::ApprovalConfig approval;
  /// Execution resources for the whole cycle. When set, this flows into
  /// `approval.exec` (unless the caller pinned that explicitly), so one knob
  /// drives every parallel section the manager touches.
  common::ExecConfig exec;
  /// Apply the segmented-hose algorithm to egress hoses before approval.
  bool use_segmented_hose = true;
  /// Balance fleet-wide ingress/egress hose totals before approval by
  /// inflating the shortage direction with a dummy service (§8).
  bool balance_hoses = true;
  std::size_t segments = 2;
  /// Skip segmentations that would over-provision badly.
  double max_segment_capacity_fraction = 1.3;
  /// NPGs treated as high-touch (§4.3); every other NPG is folded into one
  /// aggregate low-touch service for approval, then apportioned back.
  std::vector<std::uint32_t> high_touch_npgs;
  bool aggregate_low_touch = true;

  Period period{0.0, 90.0 * 86400.0};  ///< enforcement period of new contracts
  std::size_t router_paths = 4;
};

struct CycleResult {
  std::vector<forecast::SliRecord> sli;                  ///< step 1 output
  std::vector<hose::PipeRequest> pipe_requests;          ///< forecast as pipes
  std::vector<hose::HoseRequest> hose_requests;          ///< step 2 output
  std::vector<hose::BalanceReport> balance;              ///< step 2 balancing (§8)
  std::vector<approval::ApprovalEngine::GroupSegments> segments;  ///< step 2 segmentation
  std::vector<approval::HoseApprovalResult> approvals;   ///< step 3 output
  ContractDb contracts;                                  ///< step 4 output
};

class EntitlementManager {
 public:
  /// `npg_name` resolves ids to display names for contracts (may return "").
  using NameLookup = std::function<std::string(NpgId)>;

  EntitlementManager(const topology::Topology& topo, ManagerConfig config);

  void set_name_lookup(NameLookup lookup) { name_lookup_ = std::move(lookup); }

  /// Runs one full entitlement cycle over the observed histories.
  [[nodiscard]] CycleResult run_cycle(std::span<const PipeHistory> histories, Rng& rng) const;

  [[nodiscard]] const ManagerConfig& config() const { return config_; }

 private:
  [[nodiscard]] bool is_high_touch(NpgId npg) const;

  const topology::Topology& topo_;
  ManagerConfig config_;
  NameLookup name_lookup_;
};

/// Synthesizes per-pipe daily histories from fleet profiles (substitute for
/// production telemetry): per-destination series by the gravity model with
/// share drift, split across the profile's QoS mix, reduced to daily
/// aggregates. Pipes below `min_rate_gbps` mean rate are dropped.
[[nodiscard]] std::vector<PipeHistory> synthesize_histories(
    std::span<const traffic::ServiceProfile> fleet, std::size_t days, double step_seconds,
    traffic::DailyAggregate aggregate, double min_rate_gbps, Rng& rng);

/// As above, but each service is reduced with its own preferred daily
/// aggregate (§4.1: max-avg-6h for storage, p99 for ads, ...).
[[nodiscard]] std::vector<PipeHistory> synthesize_histories(
    std::span<const traffic::ServiceProfile> fleet, std::size_t days, double step_seconds,
    double min_rate_gbps, Rng& rng);

}  // namespace netent::core
