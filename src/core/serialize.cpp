#include "core/serialize.h"

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>

namespace netent::core {

namespace {

std::optional<QosClass> qos_from_string(const std::string& name) {
  for (const QosClass qos : qos_priority_order()) {
    if (name == to_string(qos)) return qos;
  }
  return std::nullopt;
}

std::optional<hose::Direction> direction_from_string(const std::string& name) {
  if (name == "egress") return hose::Direction::egress;
  if (name == "ingress") return hose::Direction::ingress;
  return std::nullopt;
}

Error parse_fail(std::size_t line, const std::string& what) {
  return Error{ErrorCode::parse_error, "line " + std::to_string(line) + ": " + what};
}

}  // namespace

void write_contracts(std::ostream& os, const ContractDb& db) {
  os << std::setprecision(17);
  for (const EntitlementContract& contract : db.contracts()) {
    os << "contract " << contract.npg.value() << ' ' << contract.slo_availability;
    if (!contract.npg_name.empty()) os << ' ' << contract.npg_name;
    os << '\n';
    for (const Entitlement& entitlement : contract.entitlements) {
      os << "entitlement " << to_string(entitlement.qos) << ' ' << entitlement.region.value()
         << ' ' << to_string(entitlement.direction) << ' ' << entitlement.entitled_rate.value()
         << ' ' << entitlement.period.start_seconds << ' ' << entitlement.period.end_seconds
         << '\n';
    }
    os << "end\n";
  }
}

Expected<ContractDb> read_contracts(std::istream& is) {
  ContractDb db;
  std::optional<EntitlementContract> current;
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(is, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive) || directive.front() == '#') continue;

    if (directive == "contract") {
      if (current) return parse_fail(line_number, "nested contract block");
      std::uint32_t npg = 0;
      double slo = 0.0;
      if (!(tokens >> npg >> slo)) return parse_fail(line_number, "malformed contract header");
      EntitlementContract contract;
      contract.npg = NpgId(npg);
      contract.slo_availability = slo;
      tokens >> contract.npg_name;  // optional
      current = std::move(contract);
    } else if (directive == "entitlement") {
      if (!current) return parse_fail(line_number, "entitlement outside contract block");
      std::string qos_name;
      std::uint32_t region = 0;
      std::string direction_name;
      double rate = 0.0;
      double start = 0.0;
      double end = 0.0;
      if (!(tokens >> qos_name >> region >> direction_name >> rate >> start >> end)) {
        return parse_fail(line_number, "malformed entitlement");
      }
      const auto qos = qos_from_string(qos_name);
      if (!qos) return parse_fail(line_number, "unknown QoS class '" + qos_name + "'");
      const auto direction = direction_from_string(direction_name);
      if (!direction) {
        return parse_fail(line_number, "unknown direction '" + direction_name + "'");
      }
      current->entitlements.push_back(Entitlement{current->npg, *qos, RegionId(region),
                                                  *direction, Gbps(rate), Period{start, end}});
    } else if (directive == "end") {
      if (!current) return parse_fail(line_number, "'end' outside contract block");
      if (const auto added = db.try_add(std::move(*current)); !added) {
        return parse_fail(line_number, "invalid contract: " + added.error().message);
      }
      current.reset();
    } else {
      return parse_fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (current) {
    return Error{ErrorCode::parse_error, "unexpected end of input: unclosed contract block"};
  }
  return db;
}

std::string contracts_to_string(const ContractDb& db) {
  std::ostringstream os;
  write_contracts(os, db);
  return os.str();
}

Expected<ContractDb> contracts_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_contracts(is);
}

Expected<ContractDb> load_contracts(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Error{ErrorCode::io_error, "cannot open '" + path + "' for reading"};
  return read_contracts(is);
}

Expected<void> save_contracts(const std::string& path, const ContractDb& db) {
  std::ofstream os(path);
  if (!os) return Error{ErrorCode::io_error, "cannot open '" + path + "' for writing"};
  write_contracts(os, db);
  os.flush();
  if (!os) return Error{ErrorCode::io_error, "write to '" + path + "' failed"};
  return {};
}

}  // namespace netent::core
