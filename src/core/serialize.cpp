#include "core/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "core/json.h"

namespace netent::core {

namespace {

std::optional<QosClass> qos_from_string(const std::string& name) {
  for (const QosClass qos : qos_priority_order()) {
    if (name == to_string(qos)) return qos;
  }
  return std::nullopt;
}

std::optional<hose::Direction> direction_from_string(const std::string& name) {
  if (name == "egress") return hose::Direction::egress;
  if (name == "ingress") return hose::Direction::ingress;
  return std::nullopt;
}

Error parse_fail(std::size_t line, const std::string& what) {
  return Error{ErrorCode::parse_error, "line " + std::to_string(line) + ": " + what};
}

}  // namespace

void write_contracts(std::ostream& os, const ContractDb& db) {
  os << std::setprecision(17);
  for (const EntitlementContract& contract : db.contracts()) {
    os << "contract " << contract.npg.value() << ' ' << contract.slo_availability;
    if (!contract.npg_name.empty()) os << ' ' << contract.npg_name;
    os << '\n';
    for (const Entitlement& entitlement : contract.entitlements) {
      os << "entitlement " << to_string(entitlement.qos) << ' ' << entitlement.region.value()
         << ' ' << to_string(entitlement.direction) << ' ' << entitlement.entitled_rate.value()
         << ' ' << entitlement.period.start_seconds << ' ' << entitlement.period.end_seconds
         << '\n';
    }
    os << "end\n";
  }
}

Expected<ContractDb> read_contracts(std::istream& is) {
  ContractDb db;
  std::optional<EntitlementContract> current;
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(is, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive) || directive.front() == '#') continue;

    if (directive == "contract") {
      if (current) return parse_fail(line_number, "nested contract block");
      std::uint32_t npg = 0;
      double slo = 0.0;
      if (!(tokens >> npg >> slo)) return parse_fail(line_number, "malformed contract header");
      EntitlementContract contract;
      contract.npg = NpgId(npg);
      contract.slo_availability = slo;
      tokens >> contract.npg_name;  // optional
      current = std::move(contract);
    } else if (directive == "entitlement") {
      if (!current) return parse_fail(line_number, "entitlement outside contract block");
      std::string qos_name;
      std::uint32_t region = 0;
      std::string direction_name;
      double rate = 0.0;
      double start = 0.0;
      double end = 0.0;
      if (!(tokens >> qos_name >> region >> direction_name >> rate >> start >> end)) {
        return parse_fail(line_number, "malformed entitlement");
      }
      const auto qos = qos_from_string(qos_name);
      if (!qos) return parse_fail(line_number, "unknown QoS class '" + qos_name + "'");
      const auto direction = direction_from_string(direction_name);
      if (!direction) {
        return parse_fail(line_number, "unknown direction '" + direction_name + "'");
      }
      current->entitlements.push_back(Entitlement{current->npg, *qos, RegionId(region),
                                                  *direction, Gbps(rate), Period{start, end}});
    } else if (directive == "end") {
      if (!current) return parse_fail(line_number, "'end' outside contract block");
      if (const auto added = db.try_add(std::move(*current)); !added) {
        return parse_fail(line_number, "invalid contract: " + added.error().message);
      }
      current.reset();
    } else {
      return parse_fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (current) {
    return Error{ErrorCode::parse_error, "unexpected end of input: unclosed contract block"};
  }
  return db;
}

std::string contracts_to_string(const ContractDb& db) {
  std::ostringstream os;
  write_contracts(os, db);
  return os.str();
}

Expected<ContractDb> contracts_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_contracts(is);
}

Expected<ContractDb> load_contracts(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Error{ErrorCode::io_error, "cannot open '" + path + "' for reading"};
  return read_contracts(is);
}

Expected<void> save_contracts(const std::string& path, const ContractDb& db) {
  std::ofstream os(path);
  if (!os) return Error{ErrorCode::io_error, "cannot open '" + path + "' for writing"};
  write_contracts(os, db);
  os.flush();
  if (!os) return Error{ErrorCode::io_error, "write to '" + path + "' failed"};
  return {};
}

// ---------------------------------------------------------------------------
// Counter-proposal JSON (core/json.h substrate). Strict schema: unknown or
// duplicated keys are parse_errors, so the reader and writer stay in
// lockstep.
// ---------------------------------------------------------------------------

namespace {

void write_hose(json::Writer& w, const hose::HoseRequest& hose) {
  w.begin_object();
  w.key("npg");
  w.value(std::uint64_t{hose.npg.value()});
  w.key("qos");
  w.value(std::string_view(to_string(hose.qos)));
  w.key("region");
  w.value(std::uint64_t{hose.region.value()});
  w.key("direction");
  w.value(std::string_view(to_string(hose.direction)));
  w.key("rate_gbps");
  w.value(hose.rate.value());
  w.end_object();
}

Error json_fail(const json::Reader& reader, const std::string& field, const std::string& what) {
  return Error{ErrorCode::parse_error,
               "line " + std::to_string(reader.line()) + ": " + field + ": " + what};
}

Expected<void> json_mark_seen(const json::Reader& reader, const std::string& field, bool& seen) {
  if (seen) return json_fail(reader, field, "duplicate key");
  seen = true;
  return {};
}

Expected<std::uint32_t> json_read_u32(json::Reader& reader, const std::string& field) {
  auto v = reader.unsigned_integer();
  if (!v) return Error{v.error().code, field + ": " + v.error().message};
  if (*v > std::numeric_limits<std::uint32_t>::max()) {
    return json_fail(reader, field, "out of 32-bit id range");
  }
  return static_cast<std::uint32_t>(*v);
}

Expected<Gbps> json_read_gbps(json::Reader& reader, const std::string& field) {
  auto v = reader.number();
  if (!v) return Error{v.error().code, field + ": " + v.error().message};
  return Gbps(*v);
}

Expected<QosClass> json_read_qos(json::Reader& reader, const std::string& field) {
  auto name = reader.string();
  if (!name) return Error{name.error().code, field + ": " + name.error().message};
  const auto qos = qos_from_string(*name);
  if (!qos) return json_fail(reader, field, "unknown QoS class '" + *name + "'");
  return *qos;
}

Expected<hose::HoseRequest> parse_hose_json(json::Reader& reader, const std::string& field) {
  hose::HoseRequest hose{};  // value-init: HoseRequest has no default member initializers
  if (auto ok = reader.begin_object(); !ok) return ok.error();
  bool seen_npg = false, seen_qos = false, seen_region = false;
  bool seen_direction = false, seen_rate = false;
  while (true) {
    auto key = reader.next_key();
    if (!key) return key.error();
    if (!*key) break;
    const std::string path = field + "." + **key;
    if (**key == "npg") {
      if (auto ok = json_mark_seen(reader, path, seen_npg); !ok) return ok.error();
      auto v = json_read_u32(reader, path);
      if (!v) return v.error();
      hose.npg = NpgId(*v);
    } else if (**key == "qos") {
      if (auto ok = json_mark_seen(reader, path, seen_qos); !ok) return ok.error();
      auto v = json_read_qos(reader, path);
      if (!v) return v.error();
      hose.qos = *v;
    } else if (**key == "region") {
      if (auto ok = json_mark_seen(reader, path, seen_region); !ok) return ok.error();
      auto v = json_read_u32(reader, path);
      if (!v) return v.error();
      hose.region = RegionId(*v);
    } else if (**key == "direction") {
      if (auto ok = json_mark_seen(reader, path, seen_direction); !ok) return ok.error();
      auto name = reader.string();
      if (!name) return Error{name.error().code, path + ": " + name.error().message};
      const auto direction = direction_from_string(*name);
      if (!direction) return json_fail(reader, path, "unknown direction '" + *name + "'");
      hose.direction = *direction;
    } else if (**key == "rate_gbps") {
      if (auto ok = json_mark_seen(reader, path, seen_rate); !ok) return ok.error();
      auto v = json_read_gbps(reader, path);
      if (!v) return v.error();
      hose.rate = *v;
    } else {
      return json_fail(reader, path, "unknown key");
    }
  }
  if (!seen_npg || !seen_qos || !seen_region || !seen_direction || !seen_rate) {
    return json_fail(reader, field, "missing required hose key");
  }
  return hose;
}

}  // namespace

std::string proposal_to_json(const approval::CounterProposal& proposal) {
  json::Writer w;
  w.begin_object();
  w.key("original");
  write_hose(w, proposal.original);
  w.key("guaranteed_gbps");
  w.value(proposal.guaranteed.value());
  w.key("residual_gbps");
  w.value(proposal.residual.value());
  w.key("region_options");
  w.begin_array();
  for (const approval::RegionAlternative& option : proposal.region_options) {
    w.begin_object();
    w.key("region");
    w.value(std::uint64_t{option.region.value()});
    w.key("guaranteed_gbps");
    w.value(option.guaranteed.value());
    w.end_object();
  }
  w.end_array();
  w.key("qos_options");
  w.begin_array();
  for (const approval::QosAlternative& option : proposal.qos_options) {
    w.begin_object();
    w.key("qos");
    w.value(std::string_view(to_string(option.qos)));
    w.key("guaranteed_gbps");
    w.value(option.guaranteed.value());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

Expected<approval::CounterProposal> proposal_from_json(std::string_view text) {
  json::Reader reader(text);
  approval::CounterProposal proposal;
  if (auto ok = reader.begin_object(); !ok) return ok.error();
  bool seen_original = false, seen_guaranteed = false, seen_residual = false;
  bool seen_regions = false, seen_qos = false;
  while (true) {
    auto key = reader.next_key();
    if (!key) return key.error();
    if (!*key) break;
    const std::string path = "proposal." + **key;
    if (**key == "original") {
      if (auto ok = json_mark_seen(reader, path, seen_original); !ok) return ok.error();
      auto hose = parse_hose_json(reader, path);
      if (!hose) return hose.error();
      proposal.original = *hose;
    } else if (**key == "guaranteed_gbps") {
      if (auto ok = json_mark_seen(reader, path, seen_guaranteed); !ok) return ok.error();
      auto v = json_read_gbps(reader, path);
      if (!v) return v.error();
      proposal.guaranteed = *v;
    } else if (**key == "residual_gbps") {
      if (auto ok = json_mark_seen(reader, path, seen_residual); !ok) return ok.error();
      auto v = json_read_gbps(reader, path);
      if (!v) return v.error();
      proposal.residual = *v;
    } else if (**key == "region_options") {
      if (auto ok = json_mark_seen(reader, path, seen_regions); !ok) return ok.error();
      if (auto ok = reader.begin_array(); !ok) return ok.error();
      while (true) {
        auto more = reader.next_element();
        if (!more) return more.error();
        if (!*more) break;
        const std::string item = path + "[" + std::to_string(proposal.region_options.size()) + "]";
        approval::RegionAlternative option;
        if (auto ok = reader.begin_object(); !ok) return ok.error();
        bool seen_region = false, seen_value = false;
        while (true) {
          auto inner = reader.next_key();
          if (!inner) return inner.error();
          if (!*inner) break;
          const std::string inner_path = item + "." + **inner;
          if (**inner == "region") {
            if (auto ok = json_mark_seen(reader, inner_path, seen_region); !ok) return ok.error();
            auto v = json_read_u32(reader, inner_path);
            if (!v) return v.error();
            option.region = RegionId(*v);
          } else if (**inner == "guaranteed_gbps") {
            if (auto ok = json_mark_seen(reader, inner_path, seen_value); !ok) return ok.error();
            auto v = json_read_gbps(reader, inner_path);
            if (!v) return v.error();
            option.guaranteed = *v;
          } else {
            return json_fail(reader, inner_path, "unknown key");
          }
        }
        if (!seen_region || !seen_value) return json_fail(reader, item, "missing required key");
        proposal.region_options.push_back(option);
      }
    } else if (**key == "qos_options") {
      if (auto ok = json_mark_seen(reader, path, seen_qos); !ok) return ok.error();
      if (auto ok = reader.begin_array(); !ok) return ok.error();
      while (true) {
        auto more = reader.next_element();
        if (!more) return more.error();
        if (!*more) break;
        const std::string item = path + "[" + std::to_string(proposal.qos_options.size()) + "]";
        approval::QosAlternative option;
        if (auto ok = reader.begin_object(); !ok) return ok.error();
        bool seen_class = false, seen_value = false;
        while (true) {
          auto inner = reader.next_key();
          if (!inner) return inner.error();
          if (!*inner) break;
          const std::string inner_path = item + "." + **inner;
          if (**inner == "qos") {
            if (auto ok = json_mark_seen(reader, inner_path, seen_class); !ok) return ok.error();
            auto v = json_read_qos(reader, inner_path);
            if (!v) return v.error();
            option.qos = *v;
          } else if (**inner == "guaranteed_gbps") {
            if (auto ok = json_mark_seen(reader, inner_path, seen_value); !ok) return ok.error();
            auto v = json_read_gbps(reader, inner_path);
            if (!v) return v.error();
            option.guaranteed = *v;
          } else {
            return json_fail(reader, inner_path, "unknown key");
          }
        }
        if (!seen_class || !seen_value) return json_fail(reader, item, "missing required key");
        proposal.qos_options.push_back(option);
      }
    } else {
      return json_fail(reader, path, "unknown key");
    }
  }
  if (!seen_original) return json_fail(reader, "proposal", "missing required key 'original'");
  if (auto ok = reader.finish(); !ok) return ok.error();
  return proposal;
}

}  // namespace netent::core
