#include "core/lifecycle.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace netent::core {

namespace {
constexpr std::size_t kQuarterDays = 90;
}

LifecycleSimulator::LifecycleSimulator(const topology::Topology& topo, LifecycleConfig config)
    : topo_(topo), config_(std::move(config)) {
  NETENT_EXPECTS(config_.quarters >= 1);
  NETENT_EXPECTS(config_.history_days >= 30);
  NETENT_EXPECTS(config_.fleet.region_count == topo.region_count());
}

std::vector<QuarterRecord> LifecycleSimulator::run(Rng& rng) const {
  // One long synthesis covering the warm-up history plus every quarter.
  const std::size_t total_days = config_.history_days + config_.quarters * kQuarterDays;
  const auto fleet = traffic::generate_fleet(config_.fleet, rng);
  const auto full_histories =
      synthesize_histories(fleet, total_days, config_.synthesis_step_seconds,
                           config_.manager.forecaster.aggregate, config_.min_pipe_rate_gbps, rng);
  NETENT_EXPECTS(!full_histories.empty());

  EntitlementManager manager(topo_, config_.manager);
  manager.set_name_lookup([&fleet](NpgId npg) {
    return npg.value() < fleet.size() ? fleet[npg.value()].name : std::string();
  });

  topology::Router router(topo_, config_.manager.router_paths);
  const auto scenarios =
      risk::enumerate_scenarios(topo_, config_.manager.approval.scenarios);
  const risk::SloVerifier verifier(router, scenarios);

  std::vector<QuarterRecord> records;
  for (std::size_t quarter = 0; quarter < config_.quarters; ++quarter) {
    const std::size_t window_begin = quarter * kQuarterDays;
    const std::size_t window_end = window_begin + config_.history_days;  // forecast origin
    const std::size_t realized_end = window_end + kQuarterDays;

    // Slice the trailing history window per pipe.
    std::vector<PipeHistory> window;
    window.reserve(full_histories.size());
    for (const PipeHistory& history : full_histories) {
      PipeHistory slice;
      slice.npg = history.npg;
      slice.qos = history.qos;
      slice.src = history.src;
      slice.dst = history.dst;
      slice.daily.assign(history.daily.begin() + static_cast<long>(window_begin),
                         history.daily.begin() + static_cast<long>(window_end));
      window.push_back(std::move(slice));
    }

    const CycleResult cycle = manager.run_cycle(window, rng);

    QuarterRecord record;
    record.quarter = quarter;
    record.pipes = cycle.pipe_requests.size();
    record.contracts = cycle.contracts.size();
    record.egress_approval_pct =
        approval_percentage(cycle.approvals, hose::Direction::egress) * 100.0;

    // Quota accuracy: granted quota vs realized p95 of the quarter's daily
    // usage, matched per pipe.
    std::vector<double> smapes;
    for (const forecast::SliRecord& sli : cycle.sli) {
      for (const PipeHistory& history : full_histories) {
        if (history.npg != sli.npg || history.qos != sli.qos || history.src != sli.src ||
            history.dst != sli.dst) {
          continue;
        }
        std::vector<double> realized(history.daily.begin() + static_cast<long>(window_end),
                                     history.daily.begin() + static_cast<long>(realized_end));
        const double realized_p95 = percentile_of(std::move(realized), 95.0);
        const double quota = sli.bandwidth.value();
        const double denom = (realized_p95 + quota) / 2.0;
        if (denom > 0.0) smapes.push_back(std::abs(realized_p95 - quota) / denom);
        break;
      }
    }
    record.quota_smape_median = smapes.empty() ? 0.0 : percentile_of(std::move(smapes), 50.0);

    // Provisioning headroom: total entitled egress vs the realized fleet
    // egress peak over the quarter.
    double entitled_egress = 0.0;
    for (const auto& contract : cycle.contracts.contracts()) {
      for (const auto& entitlement : contract.entitlements) {
        if (entitlement.direction == hose::Direction::egress) {
          entitled_egress += entitlement.entitled_rate.value();
        }
      }
    }
    double realized_peak = 0.0;
    for (std::size_t day = window_end; day < realized_end; ++day) {
      double day_total = 0.0;
      for (const PipeHistory& history : full_histories) day_total += history.daily[day];
      realized_peak = std::max(realized_peak, day_total);
    }
    record.provision_ratio = realized_peak > 0.0 ? entitled_egress / realized_peak : 0.0;

    // SLO attainment of the granted pipe-level quotas. Scale pipe requests
    // by their hose approval fraction so the replay sees granted volumes.
    std::vector<approval::PipeApprovalResult> granted;
    granted.reserve(cycle.pipe_requests.size());
    for (const hose::PipeRequest& pipe : cycle.pipe_requests) {
      double fraction = 1.0;
      for (const auto& approval : cycle.approvals) {
        if (approval.request.npg == pipe.npg && approval.request.qos == pipe.qos &&
            approval.request.direction == hose::Direction::egress &&
            approval.request.region == pipe.src) {
          fraction = approval.request.rate > Gbps(0)
                         ? approval.approved / approval.request.rate
                         : 0.0;
          break;
        }
      }
      approval::PipeApprovalResult result;
      result.request = pipe;
      result.approved = pipe.rate * fraction;
      granted.push_back(result);
    }
    // Thread count flows from the unified exec knob (falling back to the
    // approval sweep setting) instead of an ad-hoc default.
    const auto attainments =
        verifier.verify(granted, config_.manager.exec.resolve(config_.manager.approval.sweep_threads()));
    double volume = 0.0;
    double weighted = 0.0;
    for (const auto& attainment : attainments) {
      record.slo_worst_achieved =
          std::min(record.slo_worst_achieved, attainment.achieved_availability);
      volume += attainment.approved.value();
      weighted += attainment.approved.value() * attainment.achieved_availability;
    }
    record.slo_volume_weighted = volume > 0.0 ? weighted / volume : 1.0;

    records.push_back(record);
  }
  return records;
}

}  // namespace netent::core
