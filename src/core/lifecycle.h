// Multi-quarter operation of the entitlement program. The paper's system ran
// in production for over two years (§1), renewing contracts quarterly
// (§4.1's 3-month SLI window). The lifecycle simulator replays that
// operation: every quarter it feeds the trailing history window into the
// EntitlementManager, grants contracts, then scores the quarter against the
// traffic that actually materialized — forecast accuracy, approval level,
// provisioning efficiency, and SLO attainment of the granted pipes.
#pragma once

#include <vector>

#include "core/manager.h"
#include "risk/verification.h"

namespace netent::core {

struct LifecycleConfig {
  std::size_t quarters = 8;          ///< two years of quarterly cycles
  std::size_t history_days = 180;    ///< trailing window fed to the forecaster
  double synthesis_step_seconds = 3.0 * 3600.0;
  double min_pipe_rate_gbps = 1.0;   ///< drop negligible pipes
  traffic::FleetConfig fleet;
  ManagerConfig manager;
};

/// Scorecard of one operated quarter.
struct QuarterRecord {
  std::size_t quarter = 0;
  std::size_t pipes = 0;
  std::size_t contracts = 0;
  /// Median over pipes of sMAPE(quota, realized p95 daily usage): how well
  /// the granted quota tracked what the service actually needed.
  double quota_smape_median = 0.0;
  /// Total egress approved / total egress requested.
  double egress_approval_pct = 0.0;
  /// Total entitled egress / realized fleet egress peak (provisioning
  /// headroom; 1.0 == exactly sized).
  double provision_ratio = 0.0;
  /// Achieved availability of the granted volumes, replayed against the
  /// failure-scenario distribution. The hose contract guarantees the hose
  /// aggregate over the representative realizations; the quarter's REALIZED
  /// traffic matrix is one more point of the hose space, so per-pipe
  /// attainment is limited by realization coverage (more realizations =>
  /// tighter): volume_weighted is the headline, worst is the coverage gap.
  double slo_volume_weighted = 1.0;
  double slo_worst_achieved = 1.0;
};

class LifecycleSimulator {
 public:
  LifecycleSimulator(const topology::Topology& topo, LifecycleConfig config);

  /// Synthesizes the fleet's full multi-quarter traffic once, then operates
  /// the entitlement program quarter by quarter.
  [[nodiscard]] std::vector<QuarterRecord> run(Rng& rng) const;

 private:
  const topology::Topology& topo_;
  LifecycleConfig config_;
};

}  // namespace netent::core
