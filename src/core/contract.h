// The entitlement contract (§3.2): the agreement between the network team
// and an NPG. It carries the network SLO target and a list of bandwidth
// entitlements, each <NPG, QoS class, region, entitled rate, enforcement
// period>. Contracts delineate accountability: traffic within the entitled
// rate that the network cannot carry is on the network team; traffic above
// it is on the NPG.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "hose/requests.h"

namespace netent::core {

/// Enforcement period in simulation-epoch seconds (a quarter in production).
struct Period {
  double start_seconds = 0.0;
  double end_seconds = 0.0;

  [[nodiscard]] bool operator==(const Period&) const = default;
  [[nodiscard]] bool contains(double t) const { return t >= start_seconds && t < end_seconds; }
  [[nodiscard]] double length_seconds() const { return end_seconds - start_seconds; }
};

/// One bandwidth entitlement row of a contract.
struct Entitlement {
  NpgId npg;
  QosClass qos = QosClass::c4_high;
  RegionId region;
  /// Egress entitlements are enforced at run time; ingress ones are
  /// currently contract-only (ingress metering is the paper's §8 future
  /// work).
  hose::Direction direction = hose::Direction::egress;
  Gbps entitled_rate;
  Period period;
};

struct EntitlementContract {
  NpgId npg;
  std::string npg_name;
  /// Network SLO target, e.g. 0.9998 availability.
  double slo_availability = 0.0;
  std::vector<Entitlement> entitlements;
  /// Runtime handle assigned by the admission service (0 = none). A stream
  /// of resize/release requests addresses contracts by this id; it is a
  /// process-local handle and is deliberately not serialized.
  std::uint64_t id = 0;

  /// Total entitled rate across entitlements matching (qos, direction).
  [[nodiscard]] Gbps total_entitled(QosClass qos, hose::Direction direction) const;
};

}  // namespace netent::core
