#include "core/manager.h"

#include <algorithm>
#include <optional>
#include <map>

#include "common/check.h"
#include "hose/segmented.h"
#include "topology/routing.h"

namespace netent::core {

namespace {

/// Synthetic NPG id representing the aggregated low-touch service (§4.3).
constexpr NpgId kLowTouchAggregate{0xFFFFFFFFu};

}  // namespace

EntitlementManager::EntitlementManager(const topology::Topology& topo, ManagerConfig config)
    : topo_(topo), config_(std::move(config)), name_lookup_([](NpgId) { return std::string(); }) {
  NETENT_EXPECTS(config_.period.end_seconds > config_.period.start_seconds);
  NETENT_EXPECTS(config_.segments >= 2);
  // The manager-level exec knob drives the approval sweep unless the caller
  // pinned approval.exec explicitly.
  if (!config_.approval.exec.threads.has_value()) {
    config_.approval.exec.threads = config_.exec.threads;
  }
}

bool EntitlementManager::is_high_touch(NpgId npg) const {
  return std::find(config_.high_touch_npgs.begin(), config_.high_touch_npgs.end(),
                   npg.value()) != config_.high_touch_npgs.end();
}

CycleResult EntitlementManager::run_cycle(std::span<const PipeHistory> histories,
                                          Rng& rng) const {
  NETENT_EXPECTS(!histories.empty());
  CycleResult result;

  // ---- Step 1: demand forecast (organic SLI per pipe). -----------------
  const forecast::DemandForecaster forecaster(config_.forecaster);
  for (const PipeHistory& history : histories) {
    const Gbps quota = forecaster.forecast_quota(history.daily, history.holidays);
    if (quota <= Gbps(0)) continue;
    result.sli.push_back({history.npg, history.qos, history.src, history.dst, quota});
    result.pipe_requests.push_back({history.npg, history.qos, history.src, history.dst, quota});
  }
  NETENT_EXPECTS(!result.pipe_requests.empty());

  // ---- Step 2: hose representation (+ low-touch aggregation). ----------
  std::vector<hose::PipeRequest> approval_pipes = result.pipe_requests;
  if (config_.aggregate_low_touch) {
    for (hose::PipeRequest& pipe : approval_pipes) {
      if (!is_high_touch(pipe.npg)) pipe.npg = kLowTouchAggregate;
    }
  }
  result.hose_requests = hose::aggregate_to_hoses(result.pipe_requests, topo_.region_count());
  std::vector<hose::HoseRequest> approval_hoses =
      hose::aggregate_to_hoses(approval_pipes, topo_.region_count());
  // §8 preprocessing: the forecasts of each hose are independent, so the
  // fleet totals can drift apart; inflate the shortage direction before
  // approval. (Pipes from the same histories are balanced by construction,
  // but external/edited hose sets generally are not.)
  if (config_.balance_hoses) {
    result.balance = hose::balance_hoses(approval_hoses, topo_.region_count());
  }

  // Segmented hose: per (approval NPG, qos, src region), build the observed
  // per-destination share series from the histories and split it.
  if (config_.use_segmented_hose) {
    // Key -> per-destination summed daily series.
    std::map<std::tuple<std::uint32_t, QosClass, std::uint32_t>,
             std::vector<std::vector<double>>>
        flows;  // [t][dst]
    std::size_t days = 0;
    for (const PipeHistory& history : histories) days = std::max(days, history.daily.size());
    for (const PipeHistory& history : histories) {
      NpgId npg = history.npg;
      if (config_.aggregate_low_touch && !is_high_touch(npg)) npg = kLowTouchAggregate;
      auto& grid = flows[{npg.value(), history.qos, history.src.value()}];
      if (grid.empty()) grid.assign(days, std::vector<double>(topo_.region_count(), 0.0));
      for (std::size_t t = 0; t < history.daily.size(); ++t) {
        grid[t][history.dst.value()] += history.daily[t];
      }
    }
    for (auto& [key, grid] : flows) {
      const auto& [npg, qos, src] = key;
      // Egress hose rate of this (npg, qos, src).
      double hose_rate = 0.0;
      for (const hose::HoseRequest& hr : approval_hoses) {
        if (hr.npg.value() == npg && hr.qos == qos && hr.region.value() == src &&
            hr.direction == hose::Direction::egress) {
          hose_rate = hr.rate.value();
        }
      }
      if (hose_rate <= 0.0) continue;
      const hose::ShareSeries series(std::move(grid));
      const hose::Segmentation segmentation =
          config_.segments == 2 ? hose::two_segment_split(series)
                                : hose::n_segment_split(series, config_.segments);
      if (segmentation.segments.size() < 2 ||
          segmentation.capacity_fraction_total() > config_.max_segment_capacity_fraction) {
        continue;  // segmentation not productive for this hose
      }
      approval::ApprovalEngine::GroupSegments group{NpgId(npg), qos, {}};
      for (const hose::Segment& segment : segmentation.segments) {
        // The source region itself carries no flow of its own egress hose;
        // keep it out of the member sets.
        std::vector<std::uint32_t> members;
        for (const std::uint32_t m : segment.members) {
          if (m != src) members.push_back(m);
        }
        if (members.empty()) continue;
        group.segments.push_back(
            hose::SegmentConstraint{src, std::move(members), segment.alpha_plus * hose_rate});
      }
      if (group.segments.size() < 2) continue;
      result.segments.push_back(std::move(group));
    }
  }

  // ---- Step 3: approval. ------------------------------------------------
  topology::Router router(topo_, config_.router_paths);
  approval::ApprovalEngine engine(router, config_.approval);
  if (config_.aggregate_low_touch) {
    engine.set_low_touch([](NpgId npg) { return npg == kLowTouchAggregate; });
  } else {
    const auto* self = this;
    engine.set_low_touch([self](NpgId npg) { return !self->is_high_touch(npg); });
  }
  const auto aggregated_approvals = engine.hose_approval(approval_hoses, result.segments, rng);

  // Apportion aggregate approvals back to the original hoses pro-rata.
  result.approvals.reserve(result.hose_requests.size());
  for (const hose::HoseRequest& request : result.hose_requests) {
    NpgId lookup_npg = request.npg;
    if (config_.aggregate_low_touch && !is_high_touch(request.npg)) {
      lookup_npg = kLowTouchAggregate;
    }
    double fraction = 0.0;
    for (std::size_t i = 0; i < aggregated_approvals.size(); ++i) {
      const auto& agg = aggregated_approvals[i];
      if (agg.request.npg == lookup_npg && agg.request.qos == request.qos &&
          agg.request.region == request.region && agg.request.direction == request.direction) {
        fraction = agg.request.rate > Gbps(0) ? agg.approved / agg.request.rate : 0.0;
        break;
      }
    }
    result.approvals.push_back({request, request.rate * fraction});
  }

  // ---- Step 4: contracts into the database. ------------------------------
  std::map<std::uint32_t, EntitlementContract> contracts;
  for (const approval::HoseApprovalResult& approval : result.approvals) {
    auto& contract = contracts[approval.request.npg.value()];
    if (contract.entitlements.empty()) {
      contract.npg = approval.request.npg;
      contract.npg_name = name_lookup_(approval.request.npg);
      contract.slo_availability = config_.approval.slo_availability;
    }
    contract.entitlements.push_back(Entitlement{approval.request.npg, approval.request.qos,
                                                approval.request.region,
                                                approval.request.direction, approval.approved,
                                                config_.period});
  }
  for (auto& [npg, contract] : contracts) result.contracts.add(std::move(contract));
  return result;
}

namespace {

std::vector<PipeHistory> synthesize_impl(std::span<const traffic::ServiceProfile> fleet,
                                         std::size_t days, double step_seconds,
                                         std::optional<traffic::DailyAggregate> aggregate,
                                         double min_rate_gbps, Rng& rng) {
  NETENT_EXPECTS(days >= 14);
  NETENT_EXPECTS(step_seconds > 0.0);
  std::vector<PipeHistory> histories;
  const double duration = static_cast<double>(days) * 86400.0;

  for (const traffic::ServiceProfile& svc : fleet) {
    const std::size_t n = svc.src_weights.size();
    for (std::uint32_t src = 0; src < n; ++src) {
      if (svc.src_weights[src] <= 0.0) continue;
      const auto per_dst = traffic::per_destination_series(svc, RegionId(src), duration,
                                                           step_seconds, 0.05, rng);
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        if (dst == src || per_dst[dst].empty()) continue;
        const double mean_rate = per_dst[dst].total() / static_cast<double>(per_dst[dst].size());
        if (mean_rate < min_rate_gbps) continue;
        const std::vector<double> daily =
            per_dst[dst].daily(aggregate.value_or(svc.preferred_aggregate));
        for (const traffic::QosShare& share : svc.qos_mix) {
          PipeHistory history;
          history.npg = svc.id;
          history.qos = share.qos;
          history.src = RegionId(src);
          history.dst = RegionId(dst);
          history.daily.reserve(daily.size());
          for (const double v : daily) history.daily.push_back(v * share.fraction);
          history.holidays.assign(svc.pattern.holiday_days.begin(),
                                  svc.pattern.holiday_days.end());
          histories.push_back(std::move(history));
        }
      }
    }
  }
  return histories;
}

}  // namespace

std::vector<PipeHistory> synthesize_histories(std::span<const traffic::ServiceProfile> fleet,
                                              std::size_t days, double step_seconds,
                                              traffic::DailyAggregate aggregate,
                                              double min_rate_gbps, Rng& rng) {
  return synthesize_impl(fleet, days, step_seconds, aggregate, min_rate_gbps, rng);
}

std::vector<PipeHistory> synthesize_histories(std::span<const traffic::ServiceProfile> fleet,
                                              std::size_t days, double step_seconds,
                                              double min_rate_gbps, Rng& rng) {
  return synthesize_impl(fleet, days, step_seconds, std::nullopt, min_rate_gbps, rng);
}

}  // namespace netent::core
