#include "core/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace netent::core::json {

namespace {

Error parse_fail(std::size_t line, const std::string& what) {
  return Error{ErrorCode::parse_error, "line " + std::to_string(line) + ": " + what};
}

bool is_json_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/// Appends `code_point` UTF-8 encoded. Valid scalar values only (the caller
/// rejects unpaired surrogates).
void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::object_begin: return "'{'";
    case TokenKind::object_end: return "'}'";
    case TokenKind::array_begin: return "'['";
    case TokenKind::array_end: return "']'";
    case TokenKind::comma: return "','";
    case TokenKind::colon: return "':'";
    case TokenKind::string: return "string";
    case TokenKind::number: return "number";
    case TokenKind::boolean: return "boolean";
    case TokenKind::null: return "null";
    case TokenKind::end: return "end of input";
  }
  return "unknown token";
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

Expected<Token> Tokenizer::next() {
  while (pos_ < input_.size() && is_json_ws(input_[pos_])) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  Token token;
  token.line = line_;
  if (pos_ >= input_.size()) {
    token.kind = TokenKind::end;
    return token;
  }
  const char c = input_[pos_];
  switch (c) {
    case '{': ++pos_; token.kind = TokenKind::object_begin; return token;
    case '}': ++pos_; token.kind = TokenKind::object_end; return token;
    case '[': ++pos_; token.kind = TokenKind::array_begin; return token;
    case ']': ++pos_; token.kind = TokenKind::array_end; return token;
    case ',': ++pos_; token.kind = TokenKind::comma; return token;
    case ':': ++pos_; token.kind = TokenKind::colon; return token;
    case '"': return lex_string();
    default:
      if (c == '-' || (c >= '0' && c <= '9')) return lex_number();
      if (c == 't' || c == 'f' || c == 'n') return lex_word();
      return parse_fail(line_, std::string("unexpected character '") + c + "'");
  }
}

Expected<Token> Tokenizer::lex_string() {
  Token token;
  token.line = line_;
  token.kind = TokenKind::string;
  ++pos_;  // opening quote
  std::string& out = token.text;
  while (true) {
    if (pos_ >= input_.size()) return parse_fail(token.line, "unterminated string");
    const unsigned char c = static_cast<unsigned char>(input_[pos_]);
    if (c == '"') {
      ++pos_;
      return token;
    }
    if (c < 0x20) return parse_fail(line_, "raw control character in string");
    if (c != '\\') {
      if (c == '\n') ++line_;  // unreachable (control char), kept for clarity
      out.push_back(static_cast<char>(c));
      ++pos_;
      continue;
    }
    // Escape sequence.
    ++pos_;
    if (pos_ >= input_.size()) return parse_fail(token.line, "unterminated escape");
    const char esc = input_[pos_++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        const auto hex4 = [&]() -> int {
          if (pos_ + 4 > input_.size()) return -1;
          int value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= h - '0';
            else if (h >= 'a' && h <= 'f') value |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') value |= h - 'A' + 10;
            else return -1;
          }
          pos_ += 4;
          return value;
        };
        const int unit = hex4();
        if (unit < 0) return parse_fail(line_, "malformed \\u escape");
        std::uint32_t code_point = static_cast<std::uint32_t>(unit);
        if (code_point >= 0xD800 && code_point <= 0xDBFF) {
          // High surrogate: a low surrogate escape must follow.
          if (pos_ + 2 > input_.size() || input_[pos_] != '\\' || input_[pos_ + 1] != 'u') {
            return parse_fail(line_, "unpaired high surrogate");
          }
          pos_ += 2;
          const int low = hex4();
          if (low < 0xDC00 || low > 0xDFFF) {
            return parse_fail(line_, "invalid low surrogate");
          }
          code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                       (static_cast<std::uint32_t>(low) - 0xDC00);
        } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
          return parse_fail(line_, "unpaired low surrogate");
        }
        append_utf8(out, code_point);
        break;
      }
      default: return parse_fail(line_, std::string("unknown escape '\\") + esc + "'");
    }
  }
}

Expected<Token> Tokenizer::lex_number() {
  Token token;
  token.line = line_;
  token.kind = TokenKind::number;
  const std::size_t start = pos_;
  if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
  // Integer part: 0 | [1-9][0-9]*
  if (pos_ >= input_.size() || input_[pos_] < '0' || input_[pos_] > '9') {
    return parse_fail(token.line, "malformed number: missing digits");
  }
  if (input_[pos_] == '0') {
    ++pos_;
  } else {
    while (pos_ < input_.size() && input_[pos_] >= '0' && input_[pos_] <= '9') ++pos_;
  }
  if (pos_ < input_.size() && input_[pos_] == '.') {
    ++pos_;
    if (pos_ >= input_.size() || input_[pos_] < '0' || input_[pos_] > '9') {
      return parse_fail(token.line, "malformed number: missing fraction digits");
    }
    while (pos_ < input_.size() && input_[pos_] >= '0' && input_[pos_] <= '9') ++pos_;
  }
  if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
    ++pos_;
    if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) ++pos_;
    if (pos_ >= input_.size() || input_[pos_] < '0' || input_[pos_] > '9') {
      return parse_fail(token.line, "malformed number: missing exponent digits");
    }
    while (pos_ < input_.size() && input_[pos_] >= '0' && input_[pos_] <= '9') ++pos_;
  }
  const std::string_view raw = input_.substr(start, pos_ - start);
  double value = 0.0;
  const auto [end, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc() || end != raw.data() + raw.size() || !std::isfinite(value)) {
    return parse_fail(token.line, "number out of range: '" + std::string(raw) + "'");
  }
  token.text = std::string(raw);
  token.number = value;
  return token;
}

Expected<Token> Tokenizer::lex_word() {
  Token token;
  token.line = line_;
  const std::string_view rest = input_.substr(pos_);
  const auto starts = [&](std::string_view word) {
    if (rest.substr(0, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  };
  if (starts("true")) {
    token.kind = TokenKind::boolean;
    token.flag = true;
    return token;
  }
  if (starts("false")) {
    token.kind = TokenKind::boolean;
    token.flag = false;
    return token;
  }
  if (starts("null")) {
    token.kind = TokenKind::null;
    return token;
  }
  return parse_fail(line_, "unexpected bare word");
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Error Reader::fail(std::size_t line, const std::string& what) const {
  return parse_fail(line, what);
}

Expected<Token> Reader::take() {
  if (lookahead_) {
    Token token = std::move(*lookahead_);
    lookahead_.reset();
    last_line_ = token.line;
    return token;
  }
  auto token = tokenizer_.next();
  if (token) last_line_ = token->line;
  return token;
}

Expected<Token> Reader::peek() {
  if (!lookahead_) {
    auto token = tokenizer_.next();
    if (!token) return token;
    lookahead_ = std::move(*token);
  }
  return *lookahead_;
}

Expected<void> Reader::begin_object() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::object_begin) {
    return fail(token->line, std::string("expected '{', got ") + to_string(token->kind));
  }
  if (stack_.size() >= kMaxDepth) return fail(token->line, "nesting too deep");
  stack_.push_back({/*is_object=*/true, /*first=*/true});
  return {};
}

Expected<void> Reader::begin_array() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::array_begin) {
    return fail(token->line, std::string("expected '[', got ") + to_string(token->kind));
  }
  if (stack_.size() >= kMaxDepth) return fail(token->line, "nesting too deep");
  stack_.push_back({/*is_object=*/false, /*first=*/true});
  return {};
}

Expected<std::optional<std::string>> Reader::next_key() {
  if (stack_.empty() || !stack_.back().is_object) {
    return fail(last_line_, "next_key outside an object");
  }
  auto token = take();
  if (!token) return token.error();
  if (token->kind == TokenKind::object_end) {
    stack_.pop_back();
    return std::optional<std::string>{};
  }
  if (!stack_.back().first) {
    if (token->kind != TokenKind::comma) {
      return fail(token->line, std::string("expected ',' or '}', got ") + to_string(token->kind));
    }
    auto next = take();
    if (!next) return next.error();
    token = std::move(*next);
  }
  stack_.back().first = false;
  if (token->kind != TokenKind::string) {
    return fail(token->line, std::string("expected member name, got ") + to_string(token->kind));
  }
  auto colon = take();
  if (!colon) return colon.error();
  if (colon->kind != TokenKind::colon) {
    return fail(colon->line, std::string("expected ':', got ") + to_string(colon->kind));
  }
  return std::optional<std::string>{std::move(token->text)};
}

Expected<bool> Reader::next_element() {
  if (stack_.empty() || stack_.back().is_object) {
    return fail(last_line_, "next_element outside an array");
  }
  auto token = peek();
  if (!token) return token.error();
  if (token->kind == TokenKind::array_end) {
    (void)take();  // consume ']'
    stack_.pop_back();
    return false;
  }
  if (!stack_.back().first) {
    if (token->kind != TokenKind::comma) {
      return fail(token->line, std::string("expected ',' or ']', got ") + to_string(token->kind));
    }
    (void)take();  // consume ','
  }
  stack_.back().first = false;
  return true;
}

Expected<double> Reader::number() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::number) {
    return fail(token->line, std::string("expected number, got ") + to_string(token->kind));
  }
  return token->number;
}

Expected<std::uint64_t> Reader::unsigned_integer() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::number) {
    return fail(token->line, std::string("expected integer, got ") + to_string(token->kind));
  }
  // Re-parse the raw spelling as an integer: rejects fractions, exponents
  // and values that do not fit, which a double round-trip would mask.
  std::uint64_t value = 0;
  const std::string& raw = token->text;
  const auto [end, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc() || end != raw.data() + raw.size()) {
    return fail(token->line, "expected unsigned integer, got '" + raw + "'");
  }
  return value;
}

Expected<std::string> Reader::string() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::string) {
    return fail(token->line, std::string("expected string, got ") + to_string(token->kind));
  }
  return std::move(token->text);
}

Expected<bool> Reader::boolean() {
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::boolean) {
    return fail(token->line, std::string("expected boolean, got ") + to_string(token->kind));
  }
  return token->flag;
}

Expected<void> Reader::skip_value() {
  std::size_t depth = 0;
  do {
    auto token = take();
    if (!token) return token.error();
    switch (token->kind) {
      case TokenKind::object_begin:
      case TokenKind::array_begin:
        if (++depth > kMaxDepth) return fail(token->line, "nesting too deep");
        break;
      case TokenKind::object_end:
      case TokenKind::array_end:
        if (depth == 0) return fail(token->line, "unbalanced container close");
        --depth;
        break;
      case TokenKind::string:
      case TokenKind::number:
      case TokenKind::boolean:
      case TokenKind::null:
        break;
      case TokenKind::comma:
      case TokenKind::colon:
        if (depth == 0) {
          return fail(token->line, std::string("expected value, got ") + to_string(token->kind));
        }
        break;
      case TokenKind::end:
        return fail(token->line, "unexpected end of input inside value");
    }
  } while (depth > 0);
  return {};
}

Expected<void> Reader::finish() {
  if (!stack_.empty()) return fail(last_line_, "unclosed container at end of document");
  auto token = take();
  if (!token) return token.error();
  if (token->kind != TokenKind::end) {
    return fail(token->line,
                std::string("trailing content after document: ") + to_string(token->kind));
  }
  return {};
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!first_stack_.empty()) {
    if (!first_stack_.back()) out_.push_back(',');
    first_stack_.back() = false;
  }
}

void Writer::begin_object() {
  begin_value();
  out_.push_back('{');
  first_stack_.push_back(true);
}

void Writer::end_object() {
  NETENT_EXPECTS(!first_stack_.empty() && !key_pending_);
  first_stack_.pop_back();
  out_.push_back('}');
}

void Writer::begin_array() {
  begin_value();
  out_.push_back('[');
  first_stack_.push_back(true);
}

void Writer::end_array() {
  NETENT_EXPECTS(!first_stack_.empty() && !key_pending_);
  first_stack_.pop_back();
  out_.push_back(']');
}

void Writer::key(std::string_view name) {
  NETENT_EXPECTS(!first_stack_.empty() && !key_pending_);
  if (!first_stack_.back()) out_.push_back(',');
  first_stack_.back() = false;
  append_escaped(name);
  out_.push_back(':');
  key_pending_ = true;
}

void Writer::value(double v) {
  NETENT_EXPECTS(std::isfinite(v));  // NaN/Inf have no JSON spelling
  begin_value();
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  NETENT_ENSURES(ec == std::errc());
  out_.append(buffer, end);
}

void Writer::value(std::uint64_t v) {
  begin_value();
  out_.append(std::to_string(v));
}

void Writer::value(bool v) {
  begin_value();
  out_.append(v ? "true" : "false");
}

void Writer::value(std::string_view v) {
  begin_value();
  append_escaped(v);
}

void Writer::null() {
  begin_value();
  out_.append("null");
}

void Writer::append_escaped(std::string_view text) {
  out_.push_back('"');
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\b': out_.append("\\b"); break;
      case '\f': out_.append("\\f"); break;
      case '\n': out_.append("\\n"); break;
      case '\r': out_.append("\\r"); break;
      case '\t': out_.append("\\t"); break;
      default:
        if (u < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
          out_.append(buffer);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

std::string Writer::take() {
  NETENT_EXPECTS(first_stack_.empty() && !key_pending_);
  return std::move(out_);
}

}  // namespace netent::core::json
