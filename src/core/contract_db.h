// The centralized contract database (§3.2 step 4, §5 "Querying contract"):
// stores all contracts and answers the queries the run-time enforcement
// agents issue — "given NPG X and QoS class Y, what is the EntitledRate in
// force right now (optionally for my region)?".
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/expected.h"
#include "core/contract.h"
#include "enforce/agent.h"

namespace netent::core {

class ContractDb {
 public:
  /// Validates and stores a contract. Errors (invalid SLO, negative rates,
  /// entitlement/contract NPG mismatch, empty period) are returned, never
  /// silently dropped.
  [[nodiscard]] Expected<void> try_add(EntitlementContract contract);

  /// As try_add, but a validation error is a programming-contract violation
  /// (throws). Kept for callers whose input is constructed, not loaded.
  void add(EntitlementContract contract);

  /// Removes the contract with the given runtime id; false when absent.
  bool remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return contracts_.size(); }
  [[nodiscard]] std::span<const EntitlementContract> contracts() const { return contracts_; }

  [[nodiscard]] const EntitlementContract* find(NpgId npg) const;

  /// Lookup by runtime id (see EntitlementContract::id); nullptr when absent.
  [[nodiscard]] const EntitlementContract* find_by_id(std::uint64_t id) const;

  /// EntitledRate for (npg, qos, region, direction) at time t; nullopt when
  /// no entitlement covers t.
  [[nodiscard]] std::optional<Gbps> entitled_rate(NpgId npg, QosClass qos, RegionId region,
                                                  hose::Direction direction, double t) const;

  /// Service-wide egress EntitledRate for (npg, qos) at time t, summed over
  /// regions — the quantity the §5 metering loop enforces. Nullopt when no
  /// entitlement covers t.
  [[nodiscard]] std::optional<Gbps> service_entitled_rate(NpgId npg, QosClass qos,
                                                          double t) const;

  /// Adapter for the enforcement plane: agents query the database through
  /// this callback (service-wide egress rate).
  [[nodiscard]] enforce::EntitlementQuery query_adapter() const;

 private:
  std::vector<EntitlementContract> contracts_;
};

}  // namespace netent::core
