// Minimal JSON substrate for the serialization layer (`netent::core::json`):
// a hand-rolled pull tokenizer / structured reader with line-number
// diagnostics, and a byte-stable writer. This backs the declarative contract
// front-end (src/spec) and the negotiation-outcome logging surface
// (core/serialize.h) — both need the same guarantees:
//
//  * Reads NEVER crash or throw on malformed input: every failure is a
//    typed netent::Error (ErrorCode::parse_error with "line N: ..."), so a
//    fuzzer can feed the parser arbitrary bytes (tests/test_spec.cpp does).
//  * Writes are byte-stable: fixed key order is the caller's job, number
//    formatting is the shortest round-trip form (std::to_chars), strings are
//    escaped canonically — so goldens pin the output and value round-trips
//    are exact (write(parse(write(x))) == write(x)).
//  * Nesting depth is capped (kMaxDepth) so adversarial "[[[[..." input
//    cannot overflow the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"

namespace netent::core::json {

/// Containers deeper than this are a parse_error (stack-safety bound).
inline constexpr std::size_t kMaxDepth = 64;

enum class TokenKind : std::uint8_t {
  object_begin,  // {
  object_end,    // }
  array_begin,   // [
  array_end,     // ]
  comma,         // ,
  colon,         // :
  string,        // "..." (text holds the decoded value)
  number,        // text holds the raw spelling, number the parsed value
  boolean,       // true / false
  null,          // null
  end,           // end of input
};

struct Token {
  TokenKind kind = TokenKind::end;
  std::string text;
  double number = 0.0;
  bool flag = false;        ///< boolean tokens
  std::size_t line = 1;     ///< 1-based line the token starts on
};

/// Streaming tokenizer over a complete in-memory document. next() never
/// throws; malformed lexemes (bad escapes, bare words, out-of-range numbers,
/// stray control characters) return parse_error with the line number.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  [[nodiscard]] Expected<Token> next();
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  [[nodiscard]] Expected<Token> lex_string();
  [[nodiscard]] Expected<Token> lex_number();
  [[nodiscard]] Expected<Token> lex_word();

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Structured reader: the recursive-descent layer the spec / proposal
/// parsers are written against. Object/array nesting is tracked internally,
/// so field loops are flat:
///
///   json::Reader reader(text);
///   if (auto ok = reader.begin_object(); !ok) return ok.error();
///   while (true) {
///     auto key = reader.next_key();            // nullopt at '}'
///     if (!key) return key.error();
///     if (!*key) break;
///     if (**key == "gbps") { auto v = reader.number(); ... }
///     else if (auto skipped = reader.skip_value(); !skipped) ...
///   }
///
/// Every accessor returns Expected; the first error poisons nothing — the
/// caller simply propagates it (the reader is not reusable after an error).
class Reader {
 public:
  explicit Reader(std::string_view input) : tokenizer_(input) {}

  /// Consumes '{' / '['.
  [[nodiscard]] Expected<void> begin_object();
  [[nodiscard]] Expected<void> begin_array();

  /// Inside an object: the next member key, or nullopt when '}' closes the
  /// object (consumed). Handles comma bookkeeping and the ':' separator.
  [[nodiscard]] Expected<std::optional<std::string>> next_key();

  /// Inside an array: true when another element follows (caller must then
  /// read exactly one value), false when ']' closes the array (consumed).
  [[nodiscard]] Expected<bool> next_element();

  /// Scalar accessors. Type mismatches are parse_errors naming the actual
  /// token ("line 3: expected number, got string").
  [[nodiscard]] Expected<double> number();
  [[nodiscard]] Expected<std::string> string();
  [[nodiscard]] Expected<bool> boolean();
  /// number() restricted to unsigned integers that fit std::uint64_t.
  [[nodiscard]] Expected<std::uint64_t> unsigned_integer();

  /// Skips exactly one value of any type (depth-capped).
  [[nodiscard]] Expected<void> skip_value();

  /// Verifies the document is fully consumed (trailing garbage is an error).
  [[nodiscard]] Expected<void> finish();

  /// Line of the most recently consumed token (for caller diagnostics).
  [[nodiscard]] std::size_t line() const { return last_line_; }

 private:
  struct Frame {
    bool is_object = false;
    bool first = true;
  };

  [[nodiscard]] Expected<Token> take();
  [[nodiscard]] Expected<Token> peek();
  [[nodiscard]] Error fail(std::size_t line, const std::string& what) const;

  Tokenizer tokenizer_;
  std::optional<Token> lookahead_;
  std::vector<Frame> stack_;
  std::size_t last_line_ = 1;
};

[[nodiscard]] const char* to_string(TokenKind kind);

/// Byte-stable JSON writer. Compact output (no whitespace), insertion-order
/// keys, shortest-round-trip doubles. The caller is responsible for writing
/// a structurally valid document (begin/end pairing is NETENT_EXPECTS'd).
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);
  void value(double v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void value(std::string_view v);
  void null();

  /// The finished document. All containers must be closed.
  [[nodiscard]] std::string take();

 private:
  void begin_value();
  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<bool> first_stack_;  ///< per open container
  bool key_pending_ = false;
};

}  // namespace netent::core::json
