#include "core/contract_db.h"

#include "common/check.h"

namespace netent::core {

Gbps EntitlementContract::total_entitled(QosClass qos, hose::Direction direction) const {
  Gbps total(0);
  for (const Entitlement& entitlement : entitlements) {
    if (entitlement.qos == qos && entitlement.direction == direction) {
      total += entitlement.entitled_rate;
    }
  }
  return total;
}

Expected<void> ContractDb::try_add(EntitlementContract contract) {
  if (!(contract.slo_availability > 0.0 && contract.slo_availability <= 1.0)) {
    return Error{ErrorCode::invalid_argument, "contract SLO availability must be in (0, 1]"};
  }
  for (const Entitlement& entitlement : contract.entitlements) {
    if (entitlement.npg != contract.npg) {
      return Error{ErrorCode::invalid_argument, "entitlement NPG differs from contract NPG"};
    }
    if (entitlement.entitled_rate < Gbps(0)) {
      return Error{ErrorCode::invalid_argument, "entitled rate must be >= 0"};
    }
    if (!(entitlement.period.end_seconds > entitlement.period.start_seconds)) {
      return Error{ErrorCode::invalid_argument, "entitlement period must be non-empty"};
    }
  }
  contracts_.push_back(std::move(contract));
  return {};
}

void ContractDb::add(EntitlementContract contract) {
  const auto added = try_add(std::move(contract));
  if (!added) throw ContractViolation(added.error().message);
}

bool ContractDb::remove(std::uint64_t id) {
  for (std::size_t i = 0; i < contracts_.size(); ++i) {
    if (contracts_[i].id == id) {
      contracts_.erase(contracts_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

const EntitlementContract* ContractDb::find(NpgId npg) const {
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg == npg) return &contract;
  }
  return nullptr;
}

const EntitlementContract* ContractDb::find_by_id(std::uint64_t id) const {
  for (const EntitlementContract& contract : contracts_) {
    if (contract.id == id) return &contract;
  }
  return nullptr;
}

std::optional<Gbps> ContractDb::entitled_rate(NpgId npg, QosClass qos, RegionId region,
                                              hose::Direction direction, double t) const {
  bool any = false;
  Gbps total(0);
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg != npg) continue;
    for (const Entitlement& entitlement : contract.entitlements) {
      if (entitlement.qos == qos && entitlement.region == region &&
          entitlement.direction == direction && entitlement.period.contains(t)) {
        total += entitlement.entitled_rate;
        any = true;
      }
    }
  }
  if (!any) return std::nullopt;
  return total;
}

std::optional<Gbps> ContractDb::service_entitled_rate(NpgId npg, QosClass qos, double t) const {
  bool any = false;
  Gbps total(0);
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg != npg) continue;
    for (const Entitlement& entitlement : contract.entitlements) {
      if (entitlement.qos == qos && entitlement.direction == hose::Direction::egress &&
          entitlement.period.contains(t)) {
        total += entitlement.entitled_rate;
        any = true;
      }
    }
  }
  if (!any) return std::nullopt;
  return total;
}

enforce::EntitlementQuery ContractDb::query_adapter() const {
  return [this](NpgId npg, QosClass qos, double now) {
    const auto rate = service_entitled_rate(npg, qos, now);
    if (!rate) return enforce::EntitlementAnswer{false, Gbps(0)};
    return enforce::EntitlementAnswer{true, *rate};
  };
}

}  // namespace netent::core
