#include "core/contract_db.h"

#include "common/check.h"

namespace netent::core {

Gbps EntitlementContract::total_entitled(QosClass qos, hose::Direction direction) const {
  Gbps total(0);
  for (const Entitlement& entitlement : entitlements) {
    if (entitlement.qos == qos && entitlement.direction == direction) {
      total += entitlement.entitled_rate;
    }
  }
  return total;
}

void ContractDb::add(EntitlementContract contract) {
  NETENT_EXPECTS(contract.slo_availability > 0.0 && contract.slo_availability <= 1.0);
  for (const Entitlement& entitlement : contract.entitlements) {
    NETENT_EXPECTS(entitlement.npg == contract.npg);
    NETENT_EXPECTS(entitlement.entitled_rate >= Gbps(0));
    NETENT_EXPECTS(entitlement.period.end_seconds > entitlement.period.start_seconds);
  }
  contracts_.push_back(std::move(contract));
}

const EntitlementContract* ContractDb::find(NpgId npg) const {
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg == npg) return &contract;
  }
  return nullptr;
}

std::optional<Gbps> ContractDb::entitled_rate(NpgId npg, QosClass qos, RegionId region,
                                              hose::Direction direction, double t) const {
  bool any = false;
  Gbps total(0);
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg != npg) continue;
    for (const Entitlement& entitlement : contract.entitlements) {
      if (entitlement.qos == qos && entitlement.region == region &&
          entitlement.direction == direction && entitlement.period.contains(t)) {
        total += entitlement.entitled_rate;
        any = true;
      }
    }
  }
  if (!any) return std::nullopt;
  return total;
}

std::optional<Gbps> ContractDb::service_entitled_rate(NpgId npg, QosClass qos, double t) const {
  bool any = false;
  Gbps total(0);
  for (const EntitlementContract& contract : contracts_) {
    if (contract.npg != npg) continue;
    for (const Entitlement& entitlement : contract.entitlements) {
      if (entitlement.qos == qos && entitlement.direction == hose::Direction::egress &&
          entitlement.period.contains(t)) {
        total += entitlement.entitled_rate;
        any = true;
      }
    }
  }
  if (!any) return std::nullopt;
  return total;
}

enforce::EntitlementQuery ContractDb::query_adapter() const {
  return [this](NpgId npg, QosClass qos, double now) {
    const auto rate = service_entitled_rate(npg, qos, now);
    if (!rate) return enforce::EntitlementAnswer{false, Gbps(0)};
    return enforce::EntitlementAnswer{true, *rate};
  };
}

}  // namespace netent::core
