// Contract (de)serialization. Contracts are the durable artifact of the
// entitlement process ("All contracts are stored in a database", §3.2); the
// text format below is a line-oriented, diff-friendly representation used by
// operators and by tests for round-tripping:
//
//   contract <npg> <slo_availability> [name]
//   entitlement <qos> <region> <direction> <rate_gbps> <start_s> <end_s>
//   ...
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "core/contract_db.h"

namespace netent::core {

/// Thrown by read_contracts on malformed input (line number included).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes every contract in the database.
void write_contracts(std::ostream& os, const ContractDb& db);

/// Parses a database written by write_contracts. Unknown directives,
/// malformed fields, entitlements outside a contract block, or an unclosed
/// block raise ParseError. Blank lines and '#' comments are ignored.
[[nodiscard]] ContractDb read_contracts(std::istream& is);

/// Convenience string round-trip helpers.
[[nodiscard]] std::string contracts_to_string(const ContractDb& db);
[[nodiscard]] ContractDb contracts_from_string(const std::string& text);

}  // namespace netent::core
