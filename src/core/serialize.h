// Contract (de)serialization. Contracts are the durable artifact of the
// entitlement process ("All contracts are stored in a database", §3.2); the
// text format below is a line-oriented, diff-friendly representation used by
// operators and by tests for round-tripping:
//
//   contract <npg> <slo_availability> [name]
//   entitlement <qos> <region> <direction> <rate_gbps> <start_s> <end_s>
//   ...
//   end
//
// Load paths return netent::Expected — malformed input is an ErrorCode::
// parse_error with the offending line number in the message, unreadable or
// unwritable files are ErrorCode::io_error, and the [[nodiscard]] result
// forces every caller to handle the failure.
// Negotiation counter-proposals additionally serialize to JSON
// (core/json.h): byte-stable output for goldens and an Expected-returning
// parser, so a proposal can be logged, shipped to a tenant and replayed.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "approval/negotiation.h"
#include "common/expected.h"
#include "core/contract_db.h"

namespace netent::core {

/// Writes every contract in the database.
void write_contracts(std::ostream& os, const ContractDb& db);

/// Parses a database written by write_contracts. Unknown directives,
/// malformed fields, entitlements outside a contract block, or an unclosed
/// block yield an ErrorCode::parse_error carrying the line number. Blank
/// lines and '#' comments are ignored.
[[nodiscard]] Expected<ContractDb> read_contracts(std::istream& is);

/// Convenience string round-trip helpers.
[[nodiscard]] std::string contracts_to_string(const ContractDb& db);
[[nodiscard]] Expected<ContractDb> contracts_from_string(const std::string& text);

/// File-based load/save: io_error when the file cannot be opened or the
/// stream fails, parse_error (with line number) on malformed content.
[[nodiscard]] Expected<ContractDb> load_contracts(const std::string& path);
[[nodiscard]] Expected<void> save_contracts(const std::string& path, const ContractDb& db);

/// Byte-stable JSON form of one negotiation counter-proposal (§8): the
/// original hose, option (a)'s guaranteed/residual split, and the ranked
/// option (b)/(c) alternatives. proposal_from_json(proposal_to_json(p))
/// reproduces `p` exactly (Gbps values round-trip via shortest-form
/// doubles); tests/test_policy.cpp pins the output bytes.
[[nodiscard]] std::string proposal_to_json(const approval::CounterProposal& proposal);

/// Parses proposal_to_json output. Never throws; malformed or type-confused
/// input yields ErrorCode::parse_error with line/field diagnostics.
[[nodiscard]] Expected<approval::CounterProposal> proposal_from_json(std::string_view text);

}  // namespace netent::core
