#include "core/report.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/table.h"

namespace netent::core {

void write_cycle_report(std::ostream& os, const CycleResult& cycle,
                        const topology::Topology& topo,
                        const EntitlementManager::NameLookup& name_of,
                        const ReportConfig& config) {
  os << "=== Entitlement cycle report ===\n";
  os << cycle.sli.size() << " SLI records, " << cycle.hose_requests.size() << " hoses, "
     << cycle.contracts.size() << " contracts granted\n\n";

  // Per-class totals.
  struct ClassTotals {
    double requested = 0.0;
    double approved = 0.0;
  };
  std::map<QosClass, ClassTotals> per_class;
  for (const auto& approval : cycle.approvals) {
    if (approval.request.direction != hose::Direction::egress) continue;
    auto& totals = per_class[approval.request.qos];
    totals.requested += approval.request.rate.value();
    totals.approved += approval.approved.value();
  }
  Table classes({"qos_class", "egress_requested_g", "egress_approved_g", "approved_pct"}, 1);
  for (const auto& [qos, totals] : per_class) {
    classes.add_row({std::string(to_string(qos)), totals.requested, totals.approved,
                     totals.requested > 0.0 ? totals.approved / totals.requested * 100.0
                                            : 100.0});
  }
  os << "Per-class egress approvals:\n";
  classes.print(os);

  // Negotiation candidates: largest absolute under-approvals.
  std::vector<const approval::HoseApprovalResult*> under;
  for (const auto& approval : cycle.approvals) under.push_back(&approval);
  std::sort(under.begin(), under.end(), [](const auto* a, const auto* b) {
    return (a->request.rate - a->approved).value() > (b->request.rate - b->approved).value();
  });
  os << "\nTop under-approved hoses (negotiation candidates):\n";
  Table gaps({"npg", "qos", "region", "direction", "requested_g", "approved_g", "gap_g"}, 1);
  for (std::size_t i = 0; i < std::min(config.top_under_approvals, under.size()); ++i) {
    const auto& result = *under[i];
    if (result.approved >= result.request.rate - Gbps(1e-6)) break;
    std::string name = name_of(result.request.npg);
    if (name.empty()) name = "npg" + std::to_string(result.request.npg.value());
    gaps.add_row({name, std::string(to_string(result.request.qos)),
                  topo.region(result.request.region).name,
                  std::string(to_string(result.request.direction)),
                  result.request.rate.value(), result.approved.value(),
                  (result.request.rate - result.approved).value()});
  }
  if (gaps.row_count() == 0) {
    os << "  (none: every hose fully approved)\n";
  } else {
    gaps.print(os);
  }

  // Segmentation summary.
  if (!cycle.segments.empty()) {
    std::size_t segment_total = 0;
    for (const auto& group : cycle.segments) segment_total += group.segments.size();
    os << "\nSegmented hose applied to " << cycle.segments.size()
       << " (npg, qos, src) group(s), "
       << static_cast<double>(segment_total) / static_cast<double>(cycle.segments.size())
       << " segments on average\n";
  } else {
    os << "\nSegmented hose: no productive segmentations this cycle\n";
  }

  // Balancing (§8).
  for (const auto& balance : cycle.balance) {
    if (balance.inflation > Gbps(0)) {
      os << "Balancing: inflated " << to_string(balance.inflated_direction) << " of "
         << to_string(balance.qos) << " by " << balance.inflation.value() << " Gbps across "
         << balance.dummy_hoses_added << " regions\n";
    }
  }
  os << '\n';
}

}  // namespace netent::core
