// Operator report for one entitlement cycle: the summary the network team
// reads after a quarterly granting run — totals per QoS class, the most
// under-approved hoses (negotiation candidates, §4.3/§8), segmentation
// savings, and the ingress/egress balancing applied.
#pragma once

#include <iosfwd>

#include "core/manager.h"

namespace netent::core {

struct ReportConfig {
  std::size_t top_under_approvals = 5;
};

/// Writes a human-readable text report of the cycle to `os`. `topo` resolves
/// region names; `name_of` resolves NPG names (may return "").
void write_cycle_report(std::ostream& os, const CycleResult& cycle,
                        const topology::Topology& topo,
                        const EntitlementManager::NameLookup& name_of,
                        const ReportConfig& config = {});

}  // namespace netent::core
