// Umbrella header: the netent public API in one include.
//
//   #include "netent.h"
//
// pulls in every subsystem an application driver needs — topology modeling,
// hose requests, contract approval + negotiation, the contract database and
// serialization, lifecycle/manager orchestration, SLO verification, failure
// drills, the online admission service, and observability. Individual module
// headers (e.g. "approval/approval.h") remain includable on their own for
// translation units that want tighter dependencies; this header is for
// examples, tools, and downstream consumers of the library as a whole.
#pragma once

// Foundations: strong-typed ids/units, RNG, error handling, execution knobs.
#include "common/exec_config.h"
#include "common/expected.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "common/units.h"

// Observability (compiles to no-op stubs under -DNETENT_OBS=OFF).
#include "obs/export.h"
#include "obs/metrics.h"

// Network model: regions/fibers, routing, SRLGs, synthetic generators.
#include "topology/generator.h"
#include "topology/max_flow.h"
#include "topology/paths.h"
#include "topology/routing.h"
#include "topology/srlg_index.h"
#include "topology/topology.h"

// Demand model: traffic services, incidents, hose requests and clustering.
#include "hose/requests.h"
#include "hose/segmented.h"
#include "traffic/fleet.h"
#include "traffic/incident.h"
#include "traffic/service.h"

// Risk: failure scenarios, availability simulation, SLO verification.
#include "risk/failure.h"
#include "risk/simulator.h"
#include "risk/verification.h"

// Contracts: approval pipeline, negotiation, database, serialization,
// lifecycle orchestration and reporting.
#include "approval/approval.h"
#include "approval/negotiation.h"
#include "core/contract.h"
#include "core/contract_db.h"
#include "core/json.h"
#include "core/lifecycle.h"
#include "core/manager.h"
#include "core/report.h"
#include "core/serialize.h"

// Declarative front-end: the entitlement spec language, the negotiation
// policy engine and the closed-loop tenant fleet driver.
#include "spec/fleet.h"
#include "spec/policy.h"
#include "spec/spec.h"

// Enforcement: host agents, markers/meters, switch ports, central control.
#include "enforce/agent.h"
#include "enforce/bpf.h"
#include "enforce/centralized.h"
#include "enforce/dscp.h"
#include "enforce/switchport.h"

// Operations: failure drills and the online admission service.
#include "service/admission.h"
#include "sim/drill.h"
