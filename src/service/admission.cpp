#include "service/admission.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "risk/simulator.h"

namespace netent::service {

using approval::HoseApprovalResult;
using approval::PipeApprovalResult;
using hose::HoseRequest;
using hose::PipeRequest;
using topology::Demand;

namespace {

/// The shared approval-plane rate epsilon (approval/approval.h): the service
/// must agree with the engine and the negotiation layer on what counts as
/// "zero bandwidth".
constexpr double kEps = approval::kRateEpsGbps;

struct ServiceMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& requests = reg.counter("service.admission.requests");
  obs::Counter& admitted = reg.counter("service.admission.admitted");
  obs::Counter& resized = reg.counter("service.admission.resized");
  obs::Counter& released = reg.counter("service.admission.released");
  obs::Counter& rejected = reg.counter("service.admission.rejected");
  obs::Counter& failed = reg.counter("service.admission.failed");
  /// Topology-lifecycle windows: mutation batches applied, and the verdict
  /// split over the in-force contracts each delta re-verified.
  obs::Counter& topology_applied = reg.counter("service.admission.topology_applied");
  obs::Counter& mutations_applied = reg.counter("service.admission.mutations_applied");
  obs::Counter& contracts_reverified = reg.counter("service.admission.contracts_reverified");
  obs::Counter& contracts_shrunk = reg.counter("service.admission.contracts_shrunk");
  obs::Counter& contracts_revoked = reg.counter("service.admission.contracts_revoked");
  obs::Counter& windows = reg.counter("service.admission.windows");
  obs::Counter& rebuilds = reg.counter("service.admission.rebuilds");
  obs::Counter& counter_proposals = reg.counter("service.admission.counter_proposals");
  obs::Counter& committed_demands = reg.counter("service.admission.committed_demands");
  obs::Counter& fastpath_audited = reg.counter("risk.fastpath.audited");
  obs::Counter& fastpath_audit_violations = reg.counter("risk.fastpath.audit_violations");
  /// Sharded-mode fan-out accounting: sub-windows posted to shard workers
  /// and deterministic cross-shard merges completed (one per window).
  obs::Counter& shard_subwindows = reg.counter("service.admission.shard.subwindows");
  obs::Counter& shard_merges = reg.counter("service.admission.shard.merges");
  obs::Histogram& window_size = reg.histogram("service.admission.window_size",
                                              std::array{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  obs::Histogram& latency_seconds = reg.timer_histogram("service.admission.latency_seconds");
  obs::Histogram& window_seconds = reg.timer_histogram("service.admission.window_seconds");
};

ServiceMetrics& metrics() {
  static ServiceMetrics instance;
  return instance;
}

/// The approval config the engine/negotiator are built with: the service's
/// resolved thread count pinned into the unified exec knob.
approval::ApprovalConfig with_threads(approval::ApprovalConfig config, std::size_t threads) {
  config.exec.threads = threads;
  return config;
}

AdmissionOutcome failed_outcome(ErrorCode code, std::string message) {
  AdmissionOutcome outcome;
  outcome.status = AdmissionStatus::failed;
  outcome.error = Error{code, std::move(message)};
  return outcome;
}

}  // namespace

AdmissionController::AdmissionController(const topology::Topology& topo, AdmissionConfig config)
    : config_(std::move(config)),
      threads_(config_.exec.resolve(config_.approval.sweep_threads())),
      shards_(config_.exec.resolve_shards()),
      router_(topo, config_.router_paths),
      pool_(shards_ > 1 ? std::make_unique<ShardPool>(topo, shards_, config_.router_paths)
                        : nullptr),
      engine_(router_, with_threads(config_.approval, threads_)),
      negotiator_(router_, with_threads(config_.approval, threads_), config_.negotiation),
      base_capacity_(router_.full_capacities()),  // view into router_; outlived by it
      rng_(config_.seed) {
  NETENT_EXPECTS(config_.batch_window_seconds >= 0.0);
  NETENT_EXPECTS(config_.admit_min_fraction >= 0.0 && config_.admit_min_fraction <= 1.0);
  config_.approval.exec.threads = threads_;  // config() reflects the resolution
  config_.exec.shards = shards_;
  residual_ = residuals_of({});
  if (config_.approval.fastpath.enabled) {
    fast_.reserve(config_.approval.realizations);
    for (std::size_t k = 0; k < config_.approval.realizations; ++k) {
      fast_.emplace_back(router_.topo(), engine_.scenarios());
      fast_.back().rebuild(residual_[k]);
    }
  }
  if (config_.background) {
    worker_ = std::thread(&AdmissionController::worker_loop, this);
  }
}

AdmissionController::AdmissionController(topology::Topology& topo, AdmissionConfig config)
    : AdmissionController(static_cast<const topology::Topology&>(topo), std::move(config)) {
  // The delegated constructor may already have started the worker; publish
  // the mutable handle under the state lock it will read it under.
  const std::lock_guard<std::mutex> lock(state_mutex_);
  mutable_topo_ = &topo;
}

AdmissionController::~AdmissionController() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Every fast admit gets its exact audit before the controller dies, so
  // the violation counters are final.
  (void)audit_fastpath();
  // Manual-mode leftovers (or submissions that raced shutdown) must not
  // leave dangling futures.
  std::vector<Pending> leftover;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(pending_);
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(
        failed_outcome(ErrorCode::invalid_argument, "admission controller shut down"));
  }
}

std::future<AdmissionOutcome> AdmissionController::submit(AdmissionRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<AdmissionOutcome> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    pending_.push_back(std::move(pending));
  }
  queue_cv_.notify_all();
  metrics().requests.add();
  return future;
}

AdmissionOutcome AdmissionController::admit(NpgId npg, std::string npg_name,
                                            std::vector<HoseRequest> hoses) {
  AdmissionRequest request;
  request.kind = RequestKind::admit;
  request.npg = npg;
  request.npg_name = std::move(npg_name);
  request.hoses = std::move(hoses);
  auto future = submit(std::move(request));
  if (!config_.background) flush();
  return future.get();
}

AdmissionOutcome AdmissionController::resize(ContractId contract,
                                             std::vector<HoseRequest> hoses) {
  AdmissionRequest request;
  request.kind = RequestKind::resize;
  request.contract = contract;
  request.hoses = std::move(hoses);
  auto future = submit(std::move(request));
  if (!config_.background) flush();
  return future.get();
}

AdmissionOutcome AdmissionController::release(ContractId contract) {
  AdmissionRequest request;
  request.kind = RequestKind::release;
  request.contract = contract;
  auto future = submit(std::move(request));
  if (!config_.background) flush();
  return future.get();
}

AdmissionOutcome AdmissionController::apply_topology_delta(
    std::vector<topology::Mutation> mutations) {
  AdmissionRequest request;
  request.kind = RequestKind::topology;
  request.mutations = std::move(mutations);
  auto future = submit(std::move(request));
  if (!config_.background) flush();
  return future.get();
}

void AdmissionController::flush() {
  std::vector<Pending> window;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    window.swap(pending_);
  }
  process_window(std::move(window));
}

void AdmissionController::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    // Idle time pays the audit debt: fast admits queued for exact
    // verification drain while no request is waiting.
    while (!stopping_ && pending_.empty()) {
      bool audits_pending = false;
      {
        const std::lock_guard<std::mutex> audit_lock(audit_mutex_);
        audits_pending = !audit_queue_.empty();
      }
      if (!audits_pending) {
        queue_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
        break;
      }
      // One record per iteration, so an arriving request is never stuck
      // behind a long audit backlog.
      lock.unlock();
      (void)audit_one();
      lock.lock();
    }
    if (pending_.empty()) {
      if (stopping_) return;
      continue;
    }
    if (!stopping_ && config_.batch_window_seconds > 0.0) {
      // Coalesce: requests arriving within the window of the first queued
      // one join the same joint approval.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.batch_window_seconds));
      while (!stopping_ && std::chrono::steady_clock::now() < deadline) {
        queue_cv_.wait_until(lock, deadline);
      }
    }
    std::vector<Pending> window;
    window.swap(pending_);
    lock.unlock();
    process_window(std::move(window));
    lock.lock();
  }
}

void AdmissionController::process_window(std::vector<Pending> window) {
  if (window.empty()) return;
  ServiceMetrics& m = metrics();
  std::vector<AdmissionOutcome> outcomes;
  {
    const obs::ScopedTimer span(m.window_seconds);
    const std::lock_guard<std::mutex> lock(state_mutex_);
    try {
      outcomes = evaluate_window(window);
    } catch (const std::exception& e) {
      // State mutations happen after evaluation succeeds, so a throwing
      // window leaves the admitted set untouched; fail the whole window.
      outcomes.clear();
      for (std::size_t i = 0; i < window.size(); ++i) {
        outcomes.push_back(failed_outcome(ErrorCode::invalid_argument,
                                          std::string("window processing failed: ") + e.what()));
      }
    }
  }
  NETENT_ENSURES(outcomes.size() == window.size());
  m.windows.add();
  m.window_size.record(static_cast<double>(window.size()));
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < window.size(); ++i) {
    switch (outcomes[i].status) {
      case AdmissionStatus::admitted: m.admitted.add(); break;
      case AdmissionStatus::resized: m.resized.add(); break;
      case AdmissionStatus::released: m.released.add(); break;
      case AdmissionStatus::rejected: m.rejected.add(); break;
      case AdmissionStatus::failed: m.failed.add(); break;
      case AdmissionStatus::topology_applied: m.topology_applied.add(); break;
    }
    m.latency_seconds.record(std::chrono::duration<double>(now - window[i].enqueued).count());
    window[i].promise.set_value(std::move(outcomes[i]));
  }
}

std::vector<AdmissionOutcome> AdmissionController::evaluate_window(std::vector<Pending>& window) {
  ++window_seq_;
  ServiceMetrics& m = metrics();
  const std::size_t realizations = config_.approval.realizations;
  const std::size_t region_count = router_.topo().region_count();
  std::vector<AdmissionOutcome> outcomes(window.size());

  // --- Phase 0: topology windows. Mutation batches are serialized ahead of
  // the window's contract requests (in submission order among themselves),
  // so the admits / resizes below evaluate against the evolved network.
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (window[i].request.kind == RequestKind::topology) {
      outcomes[i] = evaluate_topology_window(window[i].request);
    }
  }

  // --- Phase 1: validate and classify, in submission order. ---------------
  struct EvalEntry {
    std::size_t index = 0;  ///< window position
    bool is_resize = false;
    ContractId id = 0;  ///< resize: the existing contract
    NpgId npg;
    std::string name;
    const std::vector<HoseRequest>* hoses = nullptr;
    std::size_t hose_begin = 0;  ///< offset into the joint window hose list
    bool accepted = false;
  };
  std::vector<EvalEntry> entries;
  std::set<ContractId> released_ids;
  std::set<ContractId> touched_ids;     ///< resize/release targets seen this window
  std::set<std::uint32_t> window_npgs;  ///< NPGs claimed by this window's admits

  const auto fail = [&](std::size_t i, ErrorCode code, std::string message) {
    outcomes[i] = failed_outcome(code, std::move(message));
  };
  const auto find_admitted = [&](ContractId id) -> const AdmittedEntry* {
    for (const AdmittedEntry& entry : admitted_) {
      if (entry.id == id) return &entry;
    }
    return nullptr;
  };
  // Request-shape validation, Expected-style (common/expected.h taxonomy):
  // every failure is invalid_argument with the offending hose index in the
  // message, so a spec-compiled or hand-built request fails identically.
  const auto validate_hoses = [&](const AdmissionRequest& request,
                                  NpgId npg) -> Expected<void> {
    if (request.hoses.empty()) {
      return Error{ErrorCode::invalid_argument, "request has no hoses"};
    }
    double total = 0.0;
    for (std::size_t h = 0; h < request.hoses.size(); ++h) {
      const HoseRequest& hose = request.hoses[h];
      const std::string field = "hoses[" + std::to_string(h) + "]";
      if (hose.npg != npg) {
        return Error{ErrorCode::invalid_argument,
                     field + ".npg: differs from the request's NPG"};
      }
      if (hose.region.value() >= region_count) {
        return Error{ErrorCode::invalid_argument,
                     field + ".region: region " + std::to_string(hose.region.value()) +
                         " out of range (topology has " + std::to_string(region_count) +
                         " regions)"};
      }
      if (hose.rate < Gbps(0)) {
        return Error{ErrorCode::invalid_argument, field + ".rate: must be >= 0"};
      }
      total += hose.rate.value();
    }
    if (total <= kEps) {
      return Error{ErrorCode::invalid_argument, "request asks for zero bandwidth"};
    }
    return {};
  };

  for (std::size_t i = 0; i < window.size(); ++i) {
    const AdmissionRequest& request = window[i].request;
    switch (request.kind) {
      case RequestKind::admit: {
        const bool live = std::any_of(
            admitted_.begin(), admitted_.end(), [&](const AdmittedEntry& entry) {
              return entry.npg == request.npg && released_ids.count(entry.id) == 0;
            });
        if (live || window_npgs.count(request.npg.value()) != 0) {
          fail(i, ErrorCode::invalid_argument, "NPG already holds a live contract (use resize)");
          break;
        }
        if (auto ok = validate_hoses(request, request.npg); !ok) {
          fail(i, ok.error().code, ok.error().message);
          break;
        }
        window_npgs.insert(request.npg.value());
        EvalEntry entry;
        entry.index = i;
        entry.npg = request.npg;
        entry.name = request.npg_name;
        entry.hoses = &request.hoses;
        entries.push_back(std::move(entry));
        break;
      }
      case RequestKind::resize: {
        const AdmittedEntry* existing = find_admitted(request.contract);
        if (existing == nullptr) {
          fail(i, ErrorCode::not_found,
               "unknown contract id " + std::to_string(request.contract));
          break;
        }
        if (!touched_ids.insert(request.contract).second) {
          fail(i, ErrorCode::invalid_argument,
               "contract already targeted by an earlier request in this window");
          break;
        }
        if (auto ok = validate_hoses(request, existing->npg); !ok) {
          fail(i, ok.error().code, ok.error().message);
          break;
        }
        EvalEntry entry;
        entry.index = i;
        entry.is_resize = true;
        entry.id = request.contract;
        entry.npg = existing->npg;
        entry.name = existing->name;
        entry.hoses = &request.hoses;
        entries.push_back(std::move(entry));
        break;
      }
      case RequestKind::release: {
        const AdmittedEntry* existing = find_admitted(request.contract);
        if (existing == nullptr) {
          fail(i, ErrorCode::not_found,
               "unknown contract id " + std::to_string(request.contract));
          break;
        }
        if (!touched_ids.insert(request.contract).second) {
          fail(i, ErrorCode::invalid_argument,
               "contract already targeted by an earlier request in this window");
          break;
        }
        released_ids.insert(request.contract);
        break;  // outcome finalized in phase 4
      }
      case RequestKind::topology:
        break;  // handled in phase 0
    }
  }

  // --- Phase 2: joint approval of the window against residual capacity. ---
  // Releases (and resize targets) free their reservations for the
  // evaluation: their demands are dropped from the commit history and the
  // residuals are recomputed from it. A rejected resize keeps its old grant
  // (restored in phase 4), so the evaluation is optimistic about resizes
  // that end up rejected — the trade for keeping the window joint.
  std::set<ContractId> eval_removed = released_ids;
  for (const EvalEntry& entry : entries) {
    if (entry.is_resize) eval_removed.insert(entry.id);
  }
  ResidualState eval_scratch;
  const ResidualState* eval_residual = &residual_;
  if (!eval_removed.empty()) {
    std::vector<Batch> eval_batches = batches_;
    for (Batch& batch : eval_batches) {
      for (auto& per_realization : batch.demands) {
        std::erase_if(per_realization, [&](const TaggedDemand& tagged) {
          return eval_removed.count(tagged.owner) != 0;
        });
      }
    }
    eval_scratch = residuals_of(eval_batches);
    eval_residual = &eval_scratch;
  }

  std::vector<HoseRequest> window_hoses;
  for (EvalEntry& entry : entries) {
    entry.hose_begin = window_hoses.size();
    window_hoses.insert(window_hoses.end(), entry.hoses->begin(), entry.hoses->end());
  }

  // Per-realization demands in the exact placement order the evaluation
  // used, NPG-tagged; accepted entries' demands become the committed batch.
  struct DrawnDemand {
    Demand demand;
    std::uint32_t npg = 0;
  };
  std::vector<std::vector<DrawnDemand>> drawn(realizations);
  std::vector<HoseApprovalResult> results;
  if (!window_hoses.empty()) {
    // Tier selection for the window: the fast summaries describe the
    // COMMITTED residual state, so the analytical tier only applies when
    // the window evaluates against exactly that state — pure-admit windows,
    // the streaming hot path. Windows with releases/resizes evaluate
    // against a rebuilt scratch state and always go exact.
    const bool fast_eligible = !fast_.empty() && eval_residual == &residual_;

    // GEN_DEMAND on the coordinator: the single RNG consumer, so the stream
    // is identical at every shard count.
    const approval::ApprovalEngine::RealizationPipes drawn_pipes =
        engine_.draw_realizations(window_hoses, {}, rng_);

    // Everything one realization's assessment produces, confined to its
    // shard worker until the ascending-order merge below.
    struct RealizationOutcome {
      std::vector<PipeApprovalResult> approvals;
      approval::ApprovalEngine::FastPassResult fast_pass;
      std::vector<LinkId> audit_links;
      std::vector<double> audit_residuals;
    };
    std::vector<RealizationOutcome> sub(realizations);

    const auto assess_realization = [&](std::size_t k, topology::Router& router) {
      const std::span<const PipeRequest> pipes = drawn_pipes[k];
      if (pipes.empty()) return;
      const std::vector<std::size_t> order = engine_.placement_order(pipes);
      std::vector<DrawnDemand>& record = drawn[k];
      record.clear();
      record.reserve(order.size());
      for (const std::size_t p : order) {
        record.push_back({Demand{pipes[p].src, pipes[p].dst, pipes[p].rate}, pipes[p].npg.value()});
      }
      const risk::FastEstimator* fast = fast_eligible ? &fast_[k] : nullptr;
      RealizationOutcome& out = sub[k];
      out.approvals = engine_.pipe_approval_on(
          router, pipes,
          [&](std::span<const Demand> demands) {
            return curves_against_residuals(router, *eval_residual, k, demands);
          },
          fast, &out.fast_pass);
      if (out.fast_pass.hit && config_.approval.fastpath.audit) {
        // Snapshot the state the bounds summarize — but only the links the
        // audit replay's water-fill can read: the demands' candidate paths
        // (the shard router's cache, warmed by the approval above, holds
        // exactly the same deterministic paths as the main router's).
        for (const DrawnDemand& d : record) {
          const topology::PathList paths = router.cached_paths(d.demand.src, d.demand.dst);
          NETENT_EXPECTS(paths.valid());
          for (const topology::PathView path : paths) {
            out.audit_links.insert(out.audit_links.end(), path.links.begin(), path.links.end());
          }
        }
        std::sort(out.audit_links.begin(), out.audit_links.end());
        out.audit_links.erase(std::unique(out.audit_links.begin(), out.audit_links.end()),
                              out.audit_links.end());
        out.audit_residuals.reserve(residual_[k].size() * out.audit_links.size());
        for (const std::vector<double>& scenario_residual : residual_[k]) {
          for (const LinkId link : out.audit_links) {
            out.audit_residuals.push_back(scenario_residual[link.value()]);
          }
        }
      }
    };

    if (pool_ == nullptr) {
      for (std::size_t k = 0; k < realizations; ++k) assess_realization(k, router_);
    } else {
      // Fan the sub-windows out by realization (realization k on shard
      // k % shards). Each realization's mutable state — drawn[k], sub[k],
      // fast_[k], the shard's router — is touched by exactly one worker;
      // residual_/eval_scratch are read-only during assessment; the futures
      // join is the only synchronization needed.
      std::vector<std::future<void>> futures;
      futures.reserve(realizations);
      for (std::size_t k = 0; k < realizations; ++k) {
        const std::size_t shard = pool_->shard_of(k);
        futures.push_back(pool_->post(
            shard, [&assess_realization, this, k, shard] {
              assess_realization(k, pool_->router(shard));
            }));
        m.shard_subwindows.add();
      }
      std::exception_ptr first_error;
      for (std::future<void>& future : futures) {
        try {
          future.get();
        } catch (...) {
          // Keep joining: no worker may still reference this frame when the
          // rethrow unwinds it (process_window fails the whole window).
          if (first_error == nullptr) first_error = std::current_exception();
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
    }

    // Deterministic cross-shard merge, ascending realization order: the
    // fast-path stats, the audit queue and the hose aggregation all fold
    // exactly as the 1-shard serial loop would.
    std::vector<std::vector<PipeApprovalResult>> assessed(realizations);
    for (std::size_t k = 0; k < realizations; ++k) {
      RealizationOutcome& out = sub[k];
      assessed[k] = std::move(out.approvals);
      if (out.fast_pass.hit) {
        ++fast_stats_.hits;
        if (config_.approval.fastpath.audit) {
          AuditRecord audit;
          audit.demands.reserve(drawn[k].size());
          for (const DrawnDemand& d : drawn[k]) audit.demands.push_back(d.demand);
          audit.bounds = std::move(out.fast_pass.bounds);
          audit.links = std::move(out.audit_links);
          audit.residuals = std::move(out.audit_residuals);
          const std::lock_guard<std::mutex> audit_lock(audit_mutex_);
          audit_queue_.push_back(std::move(audit));
        }
      } else if (out.fast_pass.attempted) {
        ++fast_stats_.fallbacks;
      }
    }
    if (pool_ != nullptr) m.shard_merges.add();
    results = engine_.aggregate_realizations(window_hoses, drawn_pipes, assessed);
  }

  // --- Phase 3: accept/reject each entry. ---------------------------------
  std::map<std::uint32_t, ContractId> accepted_ids;  // npg -> contract
  for (EvalEntry& entry : entries) {
    const std::span<const HoseApprovalResult> slice =
        std::span<const HoseApprovalResult>(results).subspan(entry.hose_begin,
                                                             entry.hoses->size());
    double requested = 0.0;
    double approved = 0.0;
    for (const HoseApprovalResult& result : slice) {
      requested += result.request.rate.value();
      approved += result.approved.value();
    }
    const double fraction = requested > 0.0 ? approved / requested : 0.0;
    AdmissionOutcome& outcome = outcomes[entry.index];
    outcome.approvals.assign(slice.begin(), slice.end());
    if (approved > kEps && fraction + 1e-12 >= config_.admit_min_fraction) {
      entry.accepted = true;
      if (!entry.is_resize) entry.id = next_contract_id_++;
      accepted_ids[entry.npg.value()] = entry.id;
      outcome.status = entry.is_resize ? AdmissionStatus::resized : AdmissionStatus::admitted;
      outcome.contract = entry.id;
    } else {
      outcome.status = AdmissionStatus::rejected;
      outcome.contract = entry.is_resize ? entry.id : 0;
      if (config_.attach_counter_proposals) {
        // Negotiation probes draw their own realizations; a window-derived
        // stream keeps the admission RNG (and so request outcomes)
        // independent of whether proposals are enabled.
        Rng nego_rng(config_.seed ^ (0x9e3779b97f4a7c15ULL + window_seq_));
        outcome.proposals = negotiator_.negotiate(slice, nego_rng);
        m.counter_proposals.add(outcome.proposals.size());
      }
    }
  }

  // --- Phase 4: commit. ----------------------------------------------------
  Batch batch;
  batch.demands.resize(realizations);
  std::size_t committed = 0;
  for (std::size_t k = 0; k < realizations; ++k) {
    for (const DrawnDemand& d : drawn[k]) {
      const auto it = accepted_ids.find(d.npg);
      if (it == accepted_ids.end()) continue;
      batch.demands[k].push_back({d.demand, it->second});
      ++committed;
    }
  }

  if (pool_ != nullptr && committed > 0) {
    // Sharded mode warmed this window's paths on the shard routers only;
    // the commit/rebuild replays below read the MAIN router's cache. Warm it
    // for the committed demands — deterministic KSP, so the paths equal the
    // shards' (a no-op for anything already cached).
    std::vector<Demand> to_warm;
    to_warm.reserve(committed);
    for (const auto& per_realization : batch.demands) {
      for (const TaggedDemand& tagged : per_realization) to_warm.push_back(tagged.demand);
    }
    router_.warm(to_warm);
  }

  std::set<ContractId> final_removed = released_ids;
  for (const EvalEntry& entry : entries) {
    if (entry.is_resize && entry.accepted) final_removed.insert(entry.id);
  }
  if (!final_removed.empty()) {
    // Releases / accepted resizes remove demands from the middle of the
    // placement history: no cheaper exact delta exists (water-filling is
    // order-sensitive), so rebuild the residuals from the pruned history.
    for (Batch& existing : batches_) {
      for (auto& per_realization : existing.demands) {
        std::erase_if(per_realization, [&](const TaggedDemand& tagged) {
          return final_removed.count(tagged.owner) != 0;
        });
      }
    }
    if (committed > 0) batches_.push_back(std::move(batch));
    residual_ = residuals_of(batches_);
    m.rebuilds.add();
    refresh_fastpath(nullptr);  // full summary rebuild with the residuals
  } else if (committed > 0) {
    // Pure-admit hot path: append-only, so the residuals advance with the
    // same water_fill_demand sequence a from-scratch replay would run.
    batches_.push_back(std::move(batch));
    commit_batch(batches_.back());
    refresh_fastpath(&batches_.back());  // only the batch's links moved
  }
  m.committed_demands.add(committed);

  // Contract database + registry updates.
  for (const ContractId id : released_ids) {
    db_.remove(id);
    std::erase_if(admitted_, [&](const AdmittedEntry& entry) { return entry.id == id; });
  }
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (window[i].request.kind == RequestKind::release &&
        released_ids.count(window[i].request.contract) != 0) {
      outcomes[i].status = AdmissionStatus::released;
      outcomes[i].contract = window[i].request.contract;
    }
  }
  for (EvalEntry& entry : entries) {
    if (!entry.accepted) continue;
    core::EntitlementContract contract;
    contract.npg = entry.npg;
    contract.npg_name = entry.name;
    contract.slo_availability = config_.approval.slo_availability;
    contract.id = entry.id;
    for (const HoseApprovalResult& result : outcomes[entry.index].approvals) {
      contract.entitlements.push_back(core::Entitlement{
          result.request.npg, result.request.qos, result.request.region,
          result.request.direction, result.approved, config_.period});
    }
    if (entry.is_resize) {
      db_.remove(entry.id);
      for (AdmittedEntry& existing : admitted_) {
        if (existing.id == entry.id) existing.hoses = *entry.hoses;
      }
    } else {
      AdmittedEntry registered;
      registered.id = entry.id;
      registered.npg = entry.npg;
      registered.name = entry.name;
      registered.hoses = *entry.hoses;
      admitted_.push_back(std::move(registered));
    }
    db_.add(std::move(contract));
  }
  return outcomes;
}

AdmissionOutcome AdmissionController::evaluate_topology_window(const AdmissionRequest& request) {
  if (mutable_topo_ == nullptr) {
    return failed_outcome(ErrorCode::invalid_argument,
                          "topology windows need the mutable-topology constructor");
  }
  if (request.mutations.empty()) {
    return failed_outcome(ErrorCode::invalid_argument, "topology request has no mutations");
  }
  topology::Topology& topo = *mutable_topo_;
  ServiceMetrics& m = metrics();

  // --- Validate the WHOLE batch before touching anything: one invalid
  // mutation fails the request with the topology (and every derived cache)
  // intact. Ids must name pre-batch entities — a mutation may not target a
  // link/SRLG the same batch creates (split into two windows instead).
  const std::size_t pre_links = topo.link_count();
  const std::size_t pre_regions = topo.region_count();
  const std::size_t pre_srlgs = topo.srlg_count();
  std::vector<char> sim_retired(pre_links, 0);
  std::vector<char> sim_drained(pre_regions, 0);
  std::vector<char> sim_struck(pre_srlgs, 0);
  for (std::size_t l = 0; l < pre_links; ++l) {
    sim_retired[l] = topo.link_retired(LinkId(static_cast<std::uint32_t>(l))) ? 1 : 0;
  }
  for (std::size_t r = 0; r < pre_regions; ++r) {
    sim_drained[r] = topo.region_drained(RegionId(static_cast<std::uint32_t>(r))) ? 1 : 0;
  }
  for (std::size_t g = 0; g < pre_srlgs; ++g) {
    sim_struck[g] = topo.srlg_struck(SrlgId(static_cast<std::uint32_t>(g))) ? 1 : 0;
  }
  std::string error;
  const auto invalid = [&](std::string message) {
    error = std::move(message);
    return false;
  };
  const auto validate = [&](const topology::Mutation& mut) {
    switch (mut.kind) {
      case topology::MutationKind::add_fiber: {
        if (mut.region_a.value() >= pre_regions || mut.region_b.value() >= pre_regions) {
          return invalid("add_fiber: region out of range");
        }
        if (mut.region_a == mut.region_b) return invalid("add_fiber: fiber endpoints equal");
        if (mut.capacity.value() <= 0.0) return invalid("add_fiber: capacity must be > 0");
        if (mut.conduit.has_value()) {
          if (mut.conduit->value() >= pre_links) {
            return invalid("add_fiber: conduit link must predate the batch");
          }
          if (sim_retired[mut.conduit->value()] != 0) {
            return invalid("add_fiber: conduit link is retired");
          }
        } else if (mut.mtbf_hours < 0.0 || mut.mttr_hours < 0.0) {
          return invalid("add_fiber: negative reliability");
        }
        return true;
      }
      case topology::MutationKind::retire_fiber: {
        if (mut.link.value() >= pre_links) {
          return invalid("retire_fiber: link must predate the batch");
        }
        if (sim_retired[mut.link.value()] != 0) return invalid("retire_fiber: already retired");
        sim_retired[mut.link.value()] = 1;
        sim_retired[topo.link(mut.link).reverse.value()] = 1;
        return true;
      }
      case topology::MutationKind::resize_fiber: {
        if (mut.link.value() >= pre_links) {
          return invalid("resize_fiber: link must predate the batch");
        }
        if (sim_retired[mut.link.value()] != 0) return invalid("resize_fiber: link is retired");
        if (mut.capacity.value() <= 0.0) return invalid("resize_fiber: capacity must be > 0");
        return true;
      }
      case topology::MutationKind::drain_region: {
        if (mut.region_a.value() >= pre_regions) return invalid("drain_region: out of range");
        if (sim_drained[mut.region_a.value()] != 0) return invalid("drain_region: already drained");
        sim_drained[mut.region_a.value()] = 1;
        return true;
      }
      case topology::MutationKind::undrain_region: {
        if (mut.region_a.value() >= pre_regions) return invalid("undrain_region: out of range");
        if (sim_drained[mut.region_a.value()] == 0) return invalid("undrain_region: not drained");
        sim_drained[mut.region_a.value()] = 0;
        return true;
      }
      case topology::MutationKind::strike_srlgs:
      case topology::MutationKind::repair_srlgs: {
        if (mut.srlgs.empty()) return invalid("strike/repair: empty SRLG list");
        std::vector<SrlgId> unique(mut.srlgs);
        std::sort(unique.begin(), unique.end());
        unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
        const bool striking = mut.kind == topology::MutationKind::strike_srlgs;
        for (const SrlgId srlg : unique) {
          if (srlg.value() >= pre_srlgs) return invalid("strike/repair: SRLG must predate the batch");
          if ((sim_struck[srlg.value()] != 0) == striking) {
            return invalid(striking ? "strike_srlgs: already struck"
                                    : "repair_srlgs: not struck");
          }
        }
        for (const SrlgId srlg : unique) sim_struck[srlg.value()] = striking ? 1 : 0;
        return true;
      }
    }
    return invalid("unknown mutation kind");
  };
  for (const topology::Mutation& mut : request.mutations) {
    if (!validate(mut)) {
      return failed_outcome(ErrorCode::invalid_argument, "topology mutation rejected: " + error);
    }
  }

  // --- Settle the deferred fast-path audits first: the queued records
  // snapshot PRE-mutation residuals over the pre-mutation scenario set, so
  // they must replay against the network they were decided on.
  {
    std::vector<AuditRecord> audits;
    {
      const std::lock_guard<std::mutex> audit_lock(audit_mutex_);
      audits.swap(audit_queue_);
    }
    for (const AuditRecord& record : audits) audit_record_locked(record);
  }

  // --- Apply, then resync every topology-derived cache in dependency
  // order: main router (path store + effective capacities), shard routers
  // (on their own workers, for the happens-before edge with later jobs),
  // approval engine (scenarios + simulator + pristine fast summaries), and
  // finally this controller's base-capacity view.
  const std::uint64_t from_epoch = topo.epoch();
  for (const topology::Mutation& mut : request.mutations) (void)topo.apply(mut);
  m.mutations_applied.add(request.mutations.size());

  topology::TopologyResyncStats resync_stats;
  std::vector<std::pair<RegionId, RegionId>> changed_pairs;
  router_.resync_topology(&resync_stats, &changed_pairs);
  if (pool_ != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(pool_->shard_count());
    for (std::size_t shard = 0; shard < pool_->shard_count(); ++shard) {
      futures.push_back(
          pool_->post(shard, [this, shard] { pool_->router(shard).resync_topology(); }));
    }
    for (std::future<void>& future : futures) future.get();
  }
  const bool scenarios_changed = engine_.resync_topology();
  base_capacity_ = router_.full_capacities();  // may have grown / moved

  // --- The links whose effective capacity (or existence) the delta moved,
  // both directions; with `changed_pairs` these bound which contracts the
  // delta can possibly affect.
  std::vector<char> link_changed(topo.link_count(), 0);
  const auto mark_fiber = [&](LinkId id) {
    link_changed[id.value()] = 1;
    link_changed[topo.link(id).reverse.value()] = 1;
  };
  for (const topology::MutationRecord& rec : topo.mutation_log().since(from_epoch)) {
    switch (rec.kind) {
      case topology::MutationKind::add_fiber:
      case topology::MutationKind::retire_fiber:
      case topology::MutationKind::resize_fiber:
        mark_fiber(rec.link);
        break;
      case topology::MutationKind::drain_region:
      case topology::MutationKind::undrain_region:
        for (const LinkId out : topo.out_links(rec.region)) mark_fiber(out);
        break;
      case topology::MutationKind::strike_srlgs:
      case topology::MutationKind::repair_srlgs:
        for (const topology::Link& link : topo.links()) {
          // rec.srlgs is sorted+deduped by Topology::strike/repair_srlgs.
          if (std::binary_search(rec.srlgs.begin(), rec.srlgs.end(), link.srlg)) {
            link_changed[link.id.value()] = 1;
          }
        }
        break;
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> dirty_pairs;
  for (const auto& [src, dst] : changed_pairs) dirty_pairs.insert({src.value(), dst.value()});

  // A contract needs re-verification when the scenario set itself changed
  // (every availability curve's probability masses move) or any committed
  // demand routes over a changed pair / touches a changed link.
  const auto contract_affected = [&](ContractId id) {
    if (scenarios_changed) return true;
    for (const Batch& batch : batches_) {
      for (const auto& per_realization : batch.demands) {
        for (const TaggedDemand& tagged : per_realization) {
          if (tagged.owner != id) continue;
          if (dirty_pairs.count({tagged.demand.src.value(), tagged.demand.dst.value()}) != 0) {
            return true;
          }
          const topology::PathList paths =
              router_.cached_paths(tagged.demand.src, tagged.demand.dst);
          NETENT_EXPECTS(paths.valid());
          for (const topology::PathView path : paths) {
            for (const LinkId link : path.links) {
              if (link_changed[link.value()] != 0) return true;
            }
          }
        }
      }
    }
    return false;
  };
  std::vector<ContractId> affected;
  for (const AdmittedEntry& entry : admitted_) {
    if (contract_affected(entry.id)) affected.push_back(entry.id);
  }
  std::sort(affected.begin(), affected.end());

  // --- Re-verify each affected contract in ascending id order, applying
  // each verdict before judging the next (deterministic: no RNG, and every
  // step below is bit-identical at any shard x thread count). A contract is
  // judged by re-placing its committed demands LAST: against residuals with
  // every other in-force grant placed, the fraction of each demand that
  // still clears the SLO target bounds what the evolved network supports.
  const std::size_t realizations = config_.approval.realizations;
  const double slo = config_.approval.slo_availability;
  std::vector<ContractVerdict> verdicts;
  for (const ContractId id : affected) {
    std::vector<Batch> others = batches_;
    for (Batch& batch : others) {
      for (auto& per_realization : batch.demands) {
        std::erase_if(per_realization,
                      [&](const TaggedDemand& tagged) { return tagged.owner == id; });
      }
    }
    const ResidualState minus_c = residuals_of(others);
    double worst = 1.0;
    for (std::size_t k = 0; k < realizations; ++k) {
      std::vector<Demand> demands;
      for (const Batch& batch : batches_) {
        for (const TaggedDemand& tagged : batch.demands[k]) {
          if (tagged.owner == id) demands.push_back(tagged.demand);
        }
      }
      if (demands.empty()) continue;
      const std::vector<risk::AvailabilityCurve> curves =
          curves_against_residuals(router_, minus_c, k, demands);
      for (std::size_t i = 0; i < demands.size(); ++i) {
        const double amount = demands[i].amount.value();
        if (amount <= kEps) continue;
        const double supported = curves[i].bandwidth_at(slo).value();
        worst = std::min(worst, supported + 1e-9 >= amount ? 1.0 : supported / amount);
      }
    }
    ContractVerdict verdict;
    verdict.contract = id;
    m.contracts_reverified.add();
    if (worst >= 1.0) {
      verdict.kind = VerdictKind::reaffirmed;
      verdict.fraction = 1.0;
    } else if (worst <= kEps) {
      verdict.kind = VerdictKind::revoked;
      verdict.fraction = 0.0;
      for (Batch& batch : batches_) {
        for (auto& per_realization : batch.demands) {
          std::erase_if(per_realization,
                        [&](const TaggedDemand& tagged) { return tagged.owner == id; });
        }
      }
      db_.remove(id);
      std::erase_if(admitted_, [&](const AdmittedEntry& entry) { return entry.id == id; });
      m.contracts_revoked.add();
    } else {
      verdict.kind = VerdictKind::shrunk;
      verdict.fraction = worst;
      for (Batch& batch : batches_) {
        for (auto& per_realization : batch.demands) {
          for (TaggedDemand& tagged : per_realization) {
            if (tagged.owner == id) {
              tagged.demand.amount = Gbps(tagged.demand.amount.value() * worst);
            }
          }
        }
      }
      const core::EntitlementContract* existing = db_.find_by_id(id);
      NETENT_EXPECTS(existing != nullptr);
      core::EntitlementContract updated = *existing;
      for (core::Entitlement& entitlement : updated.entitlements) {
        entitlement.entitled_rate = Gbps(entitlement.entitled_rate.value() * worst);
      }
      db_.remove(id);
      db_.add(std::move(updated));
      m.contracts_shrunk.add();
    }
    verdicts.push_back(verdict);
  }

  // --- Rebuild the maintained residual state (the scenario set and link
  // count may both have changed shape) and the fast-path summaries on the
  // resynced engine state.
  residual_ = residuals_of(batches_);
  m.rebuilds.add();
  if (config_.approval.fastpath.enabled) {
    fast_.clear();
    fast_.reserve(realizations);
    for (std::size_t k = 0; k < realizations; ++k) {
      fast_.emplace_back(router_.topo(), engine_.scenarios());
      fast_.back().rebuild(residual_[k]);
    }
  }

  AdmissionOutcome outcome;
  outcome.status = AdmissionStatus::topology_applied;
  outcome.reverified = std::move(verdicts);
  return outcome;
}

std::vector<risk::AvailabilityCurve> AdmissionController::curves_against_residuals(
    topology::Router& router, const ResidualState& residuals, std::size_t k,
    std::span<const Demand> demands) {
  router.warm(demands);
  const std::span<const risk::FailureScenario> scenarios = engine_.scenarios();
  const std::size_t scenario_count = scenarios.size();
  std::vector<std::vector<double>> placed(scenario_count);
  {
    const topology::Router::SweepGuard guard(router);
    const std::size_t threads = fanout_threads(scenario_count);
    // Per-worker RouteResult scratch (reused across scenarios) keeps the
    // fan-out's steady state allocation-free apart from the per-scenario
    // output vectors.
    std::vector<topology::RouteResult> scratch(threads + 1);
    const auto run = [&](std::size_t worker, std::size_t s) {
      topology::RouteResult& result = scratch[worker];
      router.route_warmed_into(demands, residuals[k][s], result);
      placed[s].assign(result.placed_per_demand.begin(), result.placed_per_demand.end());
    };
    if (threads <= 1) {
      for (std::size_t s = 0; s < scenario_count; ++s) run(0, s);
    } else {
      ThreadPool pool(threads);
      pool.parallel_for_with_worker(0, scenario_count, run);
    }
  }
  // Scenario-order merge — the same construction availability_curves uses,
  // so curves over pristine residuals are bit-identical to the simulator's.
  std::vector<std::vector<std::pair<double, double>>> outcomes(demands.size());
  for (auto& per_demand : outcomes) per_demand.reserve(scenario_count);
  for (std::size_t s = 0; s < scenario_count; ++s) {
    for (std::size_t i = 0; i < demands.size(); ++i) {
      outcomes[i].emplace_back(placed[s][i], scenarios[s].probability);
    }
  }
  std::vector<risk::AvailabilityCurve> curves;
  curves.reserve(demands.size());
  for (auto& per_demand : outcomes) curves.emplace_back(std::move(per_demand));
  return curves;
}

void AdmissionController::place_tagged(std::span<const TaggedDemand> demands,
                                       std::vector<double>& residual) const {
  for (const TaggedDemand& tagged : demands) {
    const topology::PathList paths = router_.cached_paths(tagged.demand.src, tagged.demand.dst);
    NETENT_EXPECTS(paths.valid());
    (void)topology::water_fill_demand(tagged.demand.amount.value(), paths, residual, {});
  }
}

AdmissionController::ResidualState AdmissionController::residuals_of(
    std::span<const Batch> batches) const {
  const std::span<const risk::FailureScenario> scenarios = engine_.scenarios();
  const std::size_t scenario_count = scenarios.size();
  const std::size_t realizations = config_.approval.realizations;
  const topology::SrlgIndex& index = engine_.simulator().srlg_index();
  ResidualState state(realizations);
  for (auto& per_scenario : state) per_scenario.resize(scenario_count);
  const auto cell = [&](std::size_t c) {
    const std::size_t k = c / scenario_count;
    const std::size_t s = c % scenario_count;
    std::vector<double>& residual = state[k][s];
    residual = risk::scenario_capacities(index, base_capacity_, scenarios[s]);
    for (const Batch& batch : batches) place_tagged(batch.demands[k], residual);
  };
  const std::size_t cells = realizations * scenario_count;
  const std::size_t threads = fanout_threads(cells);
  if (threads <= 1) {
    for (std::size_t c = 0; c < cells; ++c) cell(c);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(0, cells, cell);
  }
  return state;
}

void AdmissionController::commit_batch(const Batch& batch) {
  const std::size_t scenario_count = engine_.scenarios().size();
  const std::size_t realizations = config_.approval.realizations;
  const auto cell = [&](std::size_t c) {
    const std::size_t k = c / scenario_count;
    const std::size_t s = c % scenario_count;
    place_tagged(batch.demands[k], residual_[k][s]);
  };
  const std::size_t cells = realizations * scenario_count;
  const std::size_t threads = fanout_threads(cells);
  if (threads <= 1) {
    for (std::size_t c = 0; c < cells; ++c) cell(c);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(0, cells, cell);
  }
}

std::size_t AdmissionController::fanout_threads(std::size_t items) const {
  if (threads_ <= 1 || items < 2) return 1;
  return std::min(threads_, items);
}

std::size_t AdmissionController::admitted_count() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return admitted_.size();
}

core::ContractDb AdmissionController::contracts_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return db_;
}

AdmissionController::ResidualState AdmissionController::residual_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return residual_;
}

AdmissionController::ResidualState AdmissionController::rebuild_residuals_from_scratch() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return residuals_of(batches_);
}

void AdmissionController::refresh_fastpath(const Batch* dirty_batch) {
  if (fast_.empty()) return;
  if (dirty_batch == nullptr) {
    for (std::size_t k = 0; k < fast_.size(); ++k) fast_[k].rebuild(residual_[k]);
    return;
  }
  // A commit only subtracts capacity, and only on links of the committed
  // demands' candidate paths — re-summarize exactly those links per
  // realization (realizations draw different demand sets).
  std::vector<LinkId> dirty;
  for (std::size_t k = 0; k < fast_.size(); ++k) {
    dirty.clear();
    for (const TaggedDemand& tagged : dirty_batch->demands[k]) {
      const topology::PathList paths =
          router_.cached_paths(tagged.demand.src, tagged.demand.dst);
      NETENT_EXPECTS(paths.valid());
      for (const topology::PathView path : paths) {
        dirty.insert(dirty.end(), path.links.begin(), path.links.end());
      }
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    fast_[k].refresh_links(dirty, residual_[k]);
  }
}

bool AdmissionController::audit_one() {
  AuditRecord record;
  {
    const std::lock_guard<std::mutex> audit_lock(audit_mutex_);
    if (audit_queue_.empty()) return false;
    record = std::move(audit_queue_.front());
    audit_queue_.erase(audit_queue_.begin());
  }
  // state_mutex_ excludes concurrent path-cache warms; the replay itself is
  // the read-only warmed sweep.
  const std::lock_guard<std::mutex> lock(state_mutex_);
  audit_record_locked(record);
  return true;
}

void AdmissionController::audit_record_locked(const AuditRecord& record) {
  ServiceMetrics& m = metrics();
  const std::span<const risk::FailureScenario> scenario_set = engine_.scenarios();
  // A fast-hit realization of a window that was ultimately REJECTED never
  // committed, so in sharded mode only its shard router warmed these pairs
  // — warm the main router before the replay (a no-op when already cached).
  router_.warm(record.demands);
  std::vector<double> exact(record.demands.size(), 0.0);
  {
    const topology::Router::SweepGuard guard(router_);
    // Scatter the snapshotted candidate-path residuals into a full-size
    // scratch vector per scenario; links off the candidate paths are never
    // read by the fill, so their value (0) is irrelevant.
    std::vector<double> scratch(base_capacity_.size(), 0.0);
    topology::RouteResult result;  // reused across scenarios
    for (std::size_t s = 0; s < scenario_set.size(); ++s) {
      for (std::size_t i = 0; i < record.links.size(); ++i) {
        scratch[record.links[i].value()] = record.residuals[s * record.links.size() + i];
      }
      router_.route_warmed_into(record.demands, scratch, result);
      const std::vector<double>& placed = result.placed_per_demand;
      for (std::size_t i = 0; i < record.demands.size(); ++i) {
        if (placed[i] + 1e-9 >= record.demands[i].amount.value()) {
          exact[i] += scenario_set[s].probability;
        }
      }
    }
  }
  for (std::size_t i = 0; i < record.demands.size(); ++i) {
    ++fast_stats_.audited;
    m.fastpath_audited.add();
    if (record.bounds[i] > exact[i] + 1e-9) {
      ++fast_stats_.violations;
      m.fastpath_audit_violations.add();
    }
  }
}

std::size_t AdmissionController::audit_fastpath() {
  std::size_t drained = 0;
  while (audit_one()) ++drained;
  return drained;
}

AdmissionController::FastPathStats AdmissionController::fastpath_stats() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return fast_stats_;
}

std::span<const risk::FailureScenario> AdmissionController::scenarios() const {
  return engine_.scenarios();
}

std::vector<std::vector<double>> AdmissionController::fastpath_headroom_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<std::vector<double>> snapshot;
  snapshot.reserve(fast_.size());
  for (const risk::FastEstimator& estimator : fast_) {
    snapshot.emplace_back(estimator.headroom().begin(), estimator.headroom().end());
  }
  return snapshot;
}

}  // namespace netent::service
