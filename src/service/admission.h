// The online admission service (§1, §5 "agility"): contracts "can be
// requested at any time", so on top of the batch-mode approval engine this
// module provides a long-lived, thread-safe admission plane serving a
// stream of admit / resize / release contract requests.
//
// Architecture. The controller owns the admitted-contract set (a
// core::ContractDb) plus one warmed topology::Router and one
// approval::ApprovalEngine (scenario set + SRLG index + risk simulator)
// kept alive across requests. Requests arriving within a batching window
// are coalesced into ONE joint approval: the window's hoses are
// concatenated in submission order and assessed through
// ApprovalEngine::hose_approval_with, so a window evaluated against an
// empty service is bit-identical to a single hose_approval call on the same
// set (pinned in tests/test_admission.cpp).
//
// Incrementality. Instead of re-approving the whole admitted set per
// request, the controller maintains RESIDUAL capacity state: for every
// (realization k, failure scenario s) it keeps the per-link residual
// capacities left after placing all committed grants' realization-k demands
// under scenario s (placed in commit order through water_fill_demand — the
// one placement arithmetic). A new window only places its own pipes against
// those residuals (O(window pipes × scenarios) instead of O(admitted set)),
// and accepted grants are committed into the residuals with the exact same
// water_fill_demand call sequence a from-scratch replay of the commit
// history would execute — so the maintained state matches a from-scratch
// rebuild bit-for-bit after any admit/resize/release sequence, at any
// thread count (also pinned in tests). Releases and accepted resizes remove
// demands from the middle of the placement history, where no cheaper exact
// delta exists (water-filling is order-sensitive), so those windows rebuild
// the residuals from the recorded history; pure-admit windows — the
// streaming hot path — never do.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "approval/approval.h"
#include "approval/negotiation.h"
#include "common/exec_config.h"
#include "common/expected.h"
#include "common/rng.h"
#include "core/contract_db.h"
#include "hose/requests.h"
#include "risk/fast_estimator.h"
#include "service/sharded_admission.h"
#include "topology/routing.h"
#include "topology/topology.h"

namespace netent::service {

/// Runtime handle of an admitted contract (also stored on the contract in
/// the database as EntitlementContract::id).
using ContractId = std::uint64_t;

enum class RequestKind : std::uint8_t { admit, resize, release, topology };

/// One streamed contract request. `hoses` (admit/resize) may span several
/// QoS classes and regions but must all belong to `npg`.
struct AdmissionRequest {
  RequestKind kind = RequestKind::admit;
  NpgId npg;                ///< admit: the requesting NPG (one live contract each)
  std::string npg_name;     ///< admit: display name for the contract
  ContractId contract = 0;  ///< resize/release: which contract
  std::vector<hose::HoseRequest> hoses;  ///< admit/resize: requested hoses
  /// topology: the mutation batch to apply (validated as a unit — any
  /// invalid mutation fails the request without applying anything).
  std::vector<topology::Mutation> mutations;
};

enum class AdmissionStatus : std::uint8_t {
  admitted,  ///< contract created at the approved rates
  resized,   ///< contract replaced at the newly approved rates
  released,  ///< contract removed, its capacity reclaimed
  rejected,  ///< approval below the acceptance threshold; nothing reserved
  failed,    ///< malformed request or internal error (see `error`)
  topology_applied,  ///< mutation batch applied; `reverified` has the verdicts
};

/// Verdict on one in-force contract re-verified after a topology delta.
enum class VerdictKind : std::uint8_t {
  reaffirmed,  ///< still fully supportable; grant unchanged
  shrunk,      ///< partially supportable; grant scaled to `fraction`
  revoked,     ///< no longer supportable; contract removed
};

struct ContractVerdict {
  ContractId contract = 0;
  VerdictKind kind = VerdictKind::reaffirmed;
  /// Supportable fraction of the current grant in [0, 1] (1 = reaffirmed,
  /// 0 = revoked). Shrunk contracts keep `fraction` of every committed
  /// demand and entitlement.
  double fraction = 1.0;
};

struct AdmissionOutcome {
  AdmissionStatus status = AdmissionStatus::failed;
  ContractId contract = 0;  ///< assigned (admit) or echoed (resize/release)
  /// Per-hose approvals in request-hose order (admit/resize; empty for
  /// release). Also populated for rejections, as diagnostics.
  std::vector<approval::HoseApprovalResult> approvals;
  /// Negotiation counter-proposals, attached to rejections (§8): partial
  /// volume, alternative regions, lower QoS classes.
  std::vector<approval::CounterProposal> proposals;
  /// topology_applied: one verdict per re-verified in-force contract, in
  /// ascending ContractId order (contracts untouched by the delta are not
  /// listed — they are trivially reaffirmed).
  std::vector<ContractVerdict> reverified;
  std::optional<Error> error;  ///< set when status == failed
};

struct AdmissionConfig {
  /// Approval settings (SLO target, realizations, scenario enumeration).
  /// The controller resolves its thread count into `approval.exec`, so one
  /// knob drives the whole service. `approval.fastpath` also selects the
  /// two-tier risk verification: when enabled, each pure-admit window's
  /// realizations are first assessed by the analytical FastEstimator bound
  /// over per-realization residual-headroom summaries, falling back to the
  /// exact residual sweep when the bound cannot clear the SLO (plus margin).
  /// Verdicts and residual state are bit-identical to exact-only; fast
  /// admits are recorded for a deferred exact audit (`audit_fastpath`) when
  /// `approval.fastpath.audit` is set.
  approval::ApprovalConfig approval;
  approval::NegotiationConfig negotiation;
  /// Execution resources for the per-(realization, scenario) fan-outs.
  /// `exec.threads` (unset falls back to `approval.sweep_threads()`) sizes
  /// the scenario-sweep pool; `exec.shards` > 1 additionally partitions each
  /// window's realizations across that many shard workers, each owning a
  /// private warmed Router (service/sharded_admission.h). Results are
  /// bit-identical for every thread count AND every shard count.
  common::ExecConfig exec;
  std::size_t router_paths = 4;
  std::uint64_t seed = 1;  ///< drives realization drawing (deterministic)
  /// Coalescing window: requests arriving within this span of the first
  /// queued request are approved jointly (background mode only).
  double batch_window_seconds = 0.010;
  /// Minimum approved/requested fraction to admit. 0 admits anything with a
  /// non-zero guarantee (partial approvals, the default); 1.0 requires the
  /// full request, turning shortfalls into rejections + counter-proposals.
  double admit_min_fraction = 0.0;
  /// Attach negotiation counter-proposals to rejections (costs extra
  /// approval probes).
  bool attach_counter_proposals = true;
  /// Enforcement period written into admitted contracts.
  core::Period period{0.0, 90.0 * 86400.0};
  /// true: a worker thread coalesces submissions by wall-clock window.
  /// false: requests queue until flush() — deterministic windows, used by
  /// tests and single-threaded drivers.
  bool background = true;
};

class AdmissionController {
 public:
  AdmissionController(const topology::Topology& topo, AdmissionConfig config);
  /// Mutable-topology overload: additionally enables RequestKind::topology
  /// windows (apply_topology_delta), which mutate `topo` in place and
  /// re-verify the in-force contract set against the evolved network. The
  /// controller must be the only mutator of `topo` for its lifetime.
  AdmissionController(topology::Topology& topo, AdmissionConfig config);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueues a request; the future resolves when its window is processed.
  /// Thread-safe; submissions from concurrent callers land in one window.
  [[nodiscard]] std::future<AdmissionOutcome> submit(AdmissionRequest request);

  /// Synchronous conveniences: submit + (in manual mode) flush + wait.
  AdmissionOutcome admit(NpgId npg, std::string npg_name,
                         std::vector<hose::HoseRequest> hoses);
  AdmissionOutcome resize(ContractId contract, std::vector<hose::HoseRequest> hoses);
  AdmissionOutcome release(ContractId contract);
  /// Applies a topology mutation batch as its own serialized window (the
  /// mutable-topology constructor is required; otherwise the outcome is
  /// `failed`). The whole batch is validated first — one invalid mutation
  /// fails the request without applying anything. On success the router /
  /// shard routers / approval engine / fast-path summaries are incrementally
  /// resynced (bit-identical to a from-scratch rebuild on the mutated
  /// topology) and every in-force contract whose placement the delta can
  /// affect is re-verified: still-supportable contracts are reaffirmed,
  /// partially supportable ones shrunk in place, unsupportable ones revoked.
  /// Verdicts land in AdmissionOutcome::reverified. Deterministic at every
  /// shard x thread count: topology windows consume no admission RNG.
  AdmissionOutcome apply_topology_delta(std::vector<topology::Mutation> mutations);

  /// Processes every queued request as one window, synchronously. In
  /// background mode this is a drain (the worker may also be processing).
  void flush();

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] std::size_t admitted_count() const;
  /// Copy of the admitted-contract database (runtime ids populated).
  [[nodiscard]] core::ContractDb contracts_snapshot() const;

  /// Residual per-link capacities, indexed [realization][scenario][link].
  /// `residual_snapshot` returns the incrementally maintained state;
  /// `rebuild_residuals_from_scratch` recomputes the same state from the
  /// recorded commit history. The two are bit-identical after every window —
  /// the delta-replay equivalence the tests pin.
  using ResidualState = std::vector<std::vector<std::vector<double>>>;
  [[nodiscard]] ResidualState residual_snapshot() const;
  [[nodiscard]] ResidualState rebuild_residuals_from_scratch() const;

  /// Two-tier fast-path accounting (all zero when fastpath is disabled).
  /// `violations` counts audited fast admits whose bound exceeded the exact
  /// availability — the conservativeness invariant says it must stay zero.
  struct FastPathStats {
    std::uint64_t hits = 0;       ///< realizations admitted by the bound
    std::uint64_t fallbacks = 0;  ///< realizations that fell back to exact
    std::uint64_t audited = 0;    ///< fast-admitted demands exactly re-checked
    std::uint64_t violations = 0; ///< bound > exact availability (must be 0)
  };
  [[nodiscard]] FastPathStats fastpath_stats() const;

  /// Drains the deferred exact-audit queue: every fast-admitted realization
  /// is replayed through the exact per-scenario sweep against the residual
  /// state its bound was computed from, and any bound above the exact
  /// availability counts as a violation (risk.fastpath.audit_violations).
  /// The background worker drains opportunistically when idle; manual-mode
  /// drivers (tests, benches) call this explicitly. Returns the number of
  /// records audited. Thread-safe.
  std::size_t audit_fastpath();

  /// The enumerated failure scenarios backing every assessment (shared with
  /// tests that rebuild summaries / exact sweeps out-of-band).
  [[nodiscard]] std::span<const risk::FailureScenario> scenarios() const;

  /// The maintained per-realization headroom summaries ([realization][link];
  /// empty when fastpath is disabled). Tests pin these against summaries
  /// freshly rebuilt from residual_snapshot() after every kind of window.
  [[nodiscard]] std::vector<std::vector<double>> fastpath_headroom_snapshot() const;

 private:
  /// One committed demand: what was placed and for whom (releases filter the
  /// history by owner).
  struct TaggedDemand {
    topology::Demand demand;
    ContractId owner = 0;
  };
  /// One committed window: per realization, the accepted demands in the
  /// exact placement order the window's evaluation used.
  struct Batch {
    std::vector<std::vector<TaggedDemand>> demands;  ///< [realization]
  };
  struct AdmittedEntry {
    ContractId id = 0;
    NpgId npg;
    std::string name;
    std::vector<hose::HoseRequest> hoses;  ///< requested (for diagnostics)
  };
  struct Pending {
    AdmissionRequest request;
    std::promise<AdmissionOutcome> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One fast-admitted realization queued for the deferred exact audit: the
  /// placement-ordered demands, the bounds claimed for them, and a snapshot
  /// of the per-scenario residuals the bounds were computed against (copied
  /// at decision time, since the live state advances with every commit).
  /// A fast-admitted window queued for its deferred exact replay. The
  /// replay's water-fill only ever reads links on the demands' candidate
  /// paths, so the decision-time residual snapshot covers exactly those
  /// `links` — O(scenarios x touched links) gathered on the admission hot
  /// path instead of a full O(scenarios x links) state clone.
  struct AuditRecord {
    std::vector<topology::Demand> demands;
    std::vector<double> bounds;
    std::vector<LinkId> links;  ///< sorted, deduped candidate-path links
    /// Flat [scenario * links.size() + i] residuals for links[i].
    std::vector<double> residuals;
  };

  void worker_loop();
  void process_window(std::vector<Pending> window);
  [[nodiscard]] std::vector<AdmissionOutcome> evaluate_window(std::vector<Pending>& window);
  /// Processes one RequestKind::topology request: validate the whole batch,
  /// apply it to *mutable_topo_, resync every topology-derived cache (main
  /// router, shard routers, approval engine, base-capacity view, residuals,
  /// fast-path summaries) and re-verify affected in-force contracts.
  [[nodiscard]] AdmissionOutcome evaluate_topology_window(const AdmissionRequest& request);
  /// Rebuilds / refreshes the per-realization headroom summaries after the
  /// residual state changed. `dirty_batch` non-null: only links on the
  /// batch's demands' candidate paths are re-summarized (a pure-admit
  /// commit); null: full rebuild (release / resize windows).
  void refresh_fastpath(const Batch* dirty_batch);
  /// Audits one queued fast-admit record; false when the queue is empty.
  bool audit_one();
  /// The audit replay itself; caller holds state_mutex_. Topology windows
  /// settle the whole queue through this before mutating (the records
  /// snapshot PRE-mutation residual state over the pre-mutation scenarios).
  void audit_record_locked(const AuditRecord& record);

  /// Availability curves for placement-ordered demands of realization `k`
  /// against `residuals` (the incremental ASSESS_RISK). Warms `router` for
  /// the demand pairs, then sweeps the scenarios read-only. Shard workers
  /// pass their shard's private router; the serial path passes router_.
  [[nodiscard]] std::vector<risk::AvailabilityCurve> curves_against_residuals(
      topology::Router& router, const ResidualState& residuals, std::size_t k,
      std::span<const topology::Demand> demands);
  /// Replays `demands` into `residual` through water_fill_demand — the same
  /// call sequence for commit and rebuild, which is what keeps the two
  /// bit-identical.
  void place_tagged(std::span<const TaggedDemand> demands, std::vector<double>& residual) const;
  [[nodiscard]] ResidualState residuals_of(std::span<const Batch> batches) const;
  /// Commits `batch` into residual_ (incremental hot path).
  void commit_batch(const Batch& batch);

  [[nodiscard]] std::size_t fanout_threads(std::size_t cells) const;

  AdmissionConfig config_;
  std::size_t threads_ = 1;
  std::size_t shards_ = 1;
  /// Non-null iff constructed with the mutable-topology overload; the only
  /// handle through which topology windows mutate the network.
  topology::Topology* mutable_topo_ = nullptr;
  topology::Router router_;
  /// Shard workers for the per-realization fan-out; null when shards_ == 1
  /// (the serial path assesses every realization on router_ in place).
  std::unique_ptr<ShardPool> pool_;
  approval::ApprovalEngine engine_;
  approval::NegotiationEngine negotiator_;
  /// View of router_'s intact capacity array (router_ outlives it).
  std::span<const double> base_capacity_;

  /// Service state, guarded by state_mutex_ (windows are processed one at a
  /// time; the parallel fan-outs inside a window are internal).
  mutable std::mutex state_mutex_;
  ResidualState residual_;
  std::vector<Batch> batches_;  ///< commit history, window order
  std::vector<AdmittedEntry> admitted_;
  core::ContractDb db_;
  Rng rng_;
  ContractId next_contract_id_ = 1;
  std::uint64_t window_seq_ = 0;
  /// Tier-1 estimators, one per realization, summarizing residual_[k]
  /// (empty when fastpath is disabled). Guarded by state_mutex_.
  std::vector<risk::FastEstimator> fast_;
  FastPathStats fast_stats_;  ///< guarded by state_mutex_

  /// Deferred exact-audit queue, guarded by audit_mutex_. Never hold
  /// audit_mutex_ while acquiring state_mutex_ (enqueue takes audit under
  /// state; the drain pops under audit alone, then computes under state).
  std::mutex audit_mutex_;
  std::vector<AuditRecord> audit_queue_;

  /// Submission queue, guarded by queue_mutex_.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<Pending> pending_;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace netent::service
