// The admission plane's shard workers (ROADMAP: "shard the admission plane
// across realizations"). A ShardPool owns N long-lived workers; requests
// hash to shards by realization id (`shard_of`), every shard owns its own
// warmed topology::Router (and, through the jobs posted to it, exclusive
// use of the controller's per-realization FastEstimator state), and each
// worker is fed by a lock-free common::MpscQueue so any number of posting
// threads never contend on a shared lock.
//
// Partition discipline. Work splits by REALIZATION first: realization k of
// a window always runs on shard k % shards, so one realization's
// assessment (its placement order, its residual reads, its fast-estimator
// probes) is confined to exactly one worker — no cross-shard sharing of
// mutable state, no locks inside the assessment. Within a realization the
// scenario sweep may fan out further over the controller's ThreadPool
// (scenario blocks), which is the second, inner partition axis.
//
// Determinism. Shard routers compute the same deterministic k-shortest
// paths as the controller's main router (same topology, same k, same
// tie-breaking), each realization's inputs are independent of where it
// runs, and the coordinator joins all futures and merges per-realization
// outputs in ascending realization order (approval::aggregate_realizations
// — the PR 1 scenario-order merge discipline one level up). Decisions are
// therefore bit-identical at any shard count; tests/test_admission_sharded
// .cpp tortures this with randomized churn at 1/2/4/8 shards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "topology/routing.h"
#include "topology/topology.h"

namespace netent::service {

class ShardPool {
 public:
  /// Spawns `shards` workers (clamped to >= 1), each owning a Router over
  /// `topo` with `router_paths` candidate paths per pair.
  ShardPool(const topology::Topology& topo, std::size_t shards, std::size_t router_paths);

  /// Stops and joins every worker. Jobs still queued at destruction run to
  /// completion first — the coordinator holds futures for everything it
  /// posted, so in practice the queues are already drained.
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// The partition function: realization k lives on shard k % shard_count.
  [[nodiscard]] std::size_t shard_of(std::size_t realization) const {
    return realization % shards_.size();
  }

  /// The shard's private router. Only the owning worker may use it while a
  /// job for that shard is in flight; the coordinator may read it (e.g.
  /// cached_paths) once every posted future has been joined.
  [[nodiscard]] topology::Router& router(std::size_t shard) {
    return shards_[shard]->router;
  }

  /// Enqueues `job` on `shard`'s lock-free queue and wakes the worker.
  /// Thread-safe from any number of producers. The future resolves when the
  /// job returns (or carries its exception).
  std::future<void> post(std::size_t shard, std::function<void()> job);

 private:
  struct Shard {
    explicit Shard(const topology::Topology& topo, std::size_t router_paths)
        : router(topo, router_paths) {}

    topology::Router router;
    common::MpscQueue<std::packaged_task<void()>> queue;
    /// Wakeup handshake only — the queue itself is lock-free. Producers
    /// notify under the mutex after pushing; the worker re-checks the queue
    /// depth under it before sleeping, so no wakeup is lost.
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::thread worker;
  };

  void worker_loop(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace netent::service
