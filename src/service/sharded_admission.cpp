#include "service/sharded_admission.h"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/metrics.h"

namespace netent::service {

namespace {

struct ShardMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& jobs = reg.counter("service.admission.shard.jobs");
  obs::Gauge& workers = reg.gauge("service.admission.shard.workers");
  /// Queue depth observed by each post() — a persistent backlog means the
  /// shard count (or the realization spread) is the bottleneck.
  obs::Histogram& queue_depth = reg.histogram(
      "service.admission.shard.queue_depth", std::array{0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
};

ShardMetrics& metrics() {
  static ShardMetrics instance;
  return instance;
}

}  // namespace

ShardPool::ShardPool(const topology::Topology& topo, std::size_t shards,
                     std::size_t router_paths) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(topo, router_paths));
  }
  // Workers start only after the shard array is final: a worker never sees
  // a partially built pool.
  for (auto& shard : shards_) {
    shard->worker = std::thread(&ShardPool::worker_loop, this, std::ref(*shard));
  }
  metrics().workers.set(static_cast<double>(count));
}

ShardPool::~ShardPool() {
  for (auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopping = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::future<void> ShardPool::post(std::size_t shard_index, std::function<void()> job) {
  Shard& shard = *shards_[shard_index];
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  metrics().queue_depth.record(static_cast<double>(shard.queue.approx_size()));
  shard.queue.push(std::move(task));
  {
    // Empty critical section: pairs with the worker's predicate check under
    // the same mutex so the notify cannot race into a lost wakeup.
    const std::lock_guard<std::mutex> lock(shard.mutex);
  }
  shard.cv.notify_one();
  return future;
}

void ShardPool::worker_loop(Shard& shard) {
  for (;;) {
    std::packaged_task<void()> task;
    if (!shard.queue.pop(task)) {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] { return shard.stopping || shard.queue.approx_size() > 0; });
      if (shard.queue.pop(task)) {
        lock.unlock();
      } else {
        // stopping with an empty queue: drain complete, exit.
        return;
      }
    }
    task();  // packaged_task routes exceptions into the caller's future
    metrics().jobs.add();
  }
}

}  // namespace netent::service
