// Backbone evolution: the topology lifecycle end to end. A 12-region WAN
// roughly doubles its capacity over one simulated year while the admission
// plane keeps serving contracts: every month lays new fibers (some in
// existing conduits), upgrades others, drains a region for maintenance and
// weathers an SRLG storm — each batch applied through
// AdmissionController::apply_topology_delta, which resyncs the placement
// stack incrementally and re-verifies every in-force contract against the
// evolved network (reaffirm / shrink / revoke verdicts).
//
// Usage: ./backbone_evolution [--metrics-json]
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "netent.h"

using namespace netent;

namespace {

const char* verdict_name(service::VerdictKind kind) {
  switch (kind) {
    case service::VerdictKind::reaffirmed: return "reaffirmed";
    case service::VerdictKind::shrunk: return "shrunk";
    case service::VerdictKind::revoked: return "revoked";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json") metrics_json = true;
  }

  // Year 0: a modest 12-region backbone.
  Rng net_rng(2026);
  topology::GeneratorConfig net_config;
  net_config.region_count = 12;
  net_config.base_capacity = Gbps(800);
  net_config.capacity_sigma = 0.2;
  net_config.max_parallel_fibers = 2;
  net_config.mtbf_hours_min = 150000.0;
  net_config.mtbf_hours_max = 400000.0;
  net_config.mttr_hours_min = 4.0;
  net_config.mttr_hours_max = 12.0;
  topology::Topology topo = topology::generate_backbone(net_config, net_rng);
  const double capacity_start = topo.total_capacity().value();

  service::AdmissionConfig config;
  config.approval.realizations = 2;
  config.approval.slo_availability = 0.999;
  config.approval.scenarios.max_simultaneous = 1;
  config.seed = 2026;
  config.background = false;  // deterministic windows for a scripted demo
  config.attach_counter_proposals = false;
  service::AdmissionController controller(topo, config);  // mutable overload

  std::cout << "Backbone evolution: one simulated year of growth under continuous "
               "admission\n";
  std::cout << "  start: " << topo.region_count() << " regions, " << topo.link_count() / 2
            << " fibers, " << std::fixed << std::setprecision(0) << capacity_start
            << " Gbps total capacity\n\n";

  Rng rng(7);
  std::uint32_t next_npg = 1;
  std::size_t admitted_total = 0;
  std::size_t rejected_total = 0;
  std::size_t reaffirmed = 0;
  std::size_t shrunk = 0;
  std::size_t revoked = 0;
  std::vector<LinkId> laid_this_year;

  const auto admit_some = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t npg = next_npg++;
      const auto src = static_cast<std::uint32_t>(rng.uniform_int(topo.region_count()));
      auto dst = static_cast<std::uint32_t>(rng.uniform_int(topo.region_count()));
      if (dst == src) dst = (dst + 1) % static_cast<std::uint32_t>(topo.region_count());
      hose::HoseRequest egress;
      egress.npg = NpgId(npg);
      egress.qos = QosClass::c4_high;
      egress.region = RegionId(src);
      egress.direction = hose::Direction::egress;
      egress.rate = Gbps(rng.uniform(20.0, 80.0));
      hose::HoseRequest ingress = egress;
      ingress.region = RegionId(dst);
      ingress.direction = hose::Direction::ingress;
      const auto outcome =
          controller.admit(NpgId(npg), "svc" + std::to_string(npg), {egress, ingress});
      if (outcome.status == service::AdmissionStatus::admitted) {
        ++admitted_total;
      } else {
        ++rejected_total;
      }
    }
  };

  for (int month = 1; month <= 12; ++month) {
    const double when = static_cast<double>(month) * 730.0;  // hours

    // Contracts keep arriving while the network evolves.
    admit_some(3);

    // This month's change batch: lay 1-2 new fibers (sometimes in an
    // existing conduit), upgrade one, and every quarter drain a region for
    // maintenance or take a storm — one atomic, re-verified delta.
    std::vector<topology::Mutation> batch;
    const std::size_t lays = 2 + rng.uniform_int(2);
    for (std::size_t i = 0; i < lays; ++i) {
      topology::Mutation lay;
      lay.kind = topology::MutationKind::add_fiber;
      lay.when_hours = when;
      const auto a = static_cast<std::uint32_t>(rng.uniform_int(topo.region_count()));
      auto b = static_cast<std::uint32_t>(rng.uniform_int(topo.region_count()));
      if (b == a) b = (b + 1) % static_cast<std::uint32_t>(topo.region_count());
      lay.region_a = RegionId(a);
      lay.region_b = RegionId(b);
      lay.capacity = Gbps(rng.uniform(600.0, 1800.0));
      lay.mtbf_hours = rng.uniform(150000.0, 400000.0);
      lay.mttr_hours = rng.uniform(4.0, 12.0);
      if (!laid_this_year.empty() && rng.uniform_int(3) == 0) {
        lay.conduit = laid_this_year[rng.uniform_int(laid_this_year.size())];
      }
      batch.push_back(lay);
    }
    for (int upgrades = 0; upgrades < 2; ++upgrades) {
      topology::Mutation upgrade;
      upgrade.kind = topology::MutationKind::resize_fiber;
      upgrade.when_hours = when;
      for (;;) {
        const auto id = LinkId(static_cast<std::uint32_t>(rng.uniform_int(topo.link_count())));
        if (topo.link_retired(id)) continue;
        upgrade.link = id;
        upgrade.capacity = Gbps(topo.link(id).capacity.value() * rng.uniform(1.2, 1.6));
        break;
      }
      batch.push_back(upgrade);
    }
    if (month % 4 == 0) {
      topology::Mutation drain;
      drain.kind = topology::MutationKind::drain_region;
      drain.when_hours = when;
      drain.region_a = RegionId(static_cast<std::uint32_t>(rng.uniform_int(topo.region_count())));
      batch.push_back(drain);
    } else if (month % 4 == 2) {
      topology::Mutation storm;
      storm.kind = topology::MutationKind::strike_srlgs;
      storm.when_hours = when;
      storm.srlgs = {SrlgId(static_cast<std::uint32_t>(rng.uniform_int(topo.srlg_count())))};
      batch.push_back(storm);
    } else {
      // Recover whatever last month's maintenance or storm took down.
      for (std::uint32_t r = 0; r < topo.region_count(); ++r) {
        if (topo.region_drained(RegionId(r))) {
          topology::Mutation undrain;
          undrain.kind = topology::MutationKind::undrain_region;
          undrain.when_hours = when;
          undrain.region_a = RegionId(r);
          batch.push_back(undrain);
        }
      }
      std::vector<SrlgId> struck;
      for (std::uint32_t g = 0; g < topo.srlg_count(); ++g) {
        if (topo.srlg_struck(SrlgId(g))) struck.push_back(SrlgId(g));
      }
      if (!struck.empty()) {
        topology::Mutation repair;
        repair.kind = topology::MutationKind::repair_srlgs;
        repair.when_hours = when;
        repair.srlgs = std::move(struck);
        batch.push_back(repair);
      }
    }

    const std::uint64_t pre_epoch = topo.epoch();
    const auto outcome = controller.apply_topology_delta(batch);
    if (outcome.status != service::AdmissionStatus::topology_applied) {
      std::cerr << "month " << month << ": topology delta failed: "
                << (outcome.error ? outcome.error->message : "?") << '\n';
      return 1;
    }
    for (const topology::MutationRecord& rec : topo.mutation_log().since(pre_epoch)) {
      if (rec.kind == topology::MutationKind::add_fiber) laid_this_year.push_back(rec.link);
    }
    for (const service::ContractVerdict& verdict : outcome.reverified) {
      switch (verdict.kind) {
        case service::VerdictKind::reaffirmed: ++reaffirmed; break;
        case service::VerdictKind::shrunk: ++shrunk; break;
        case service::VerdictKind::revoked: ++revoked; break;
      }
    }

    std::cout << "month " << std::setw(2) << month << ": epoch " << std::setw(3) << topo.epoch()
              << ", " << topo.link_count() / 2 << " fibers, " << std::setprecision(0)
              << topo.total_effective_capacity().value() << " Gbps effective, "
              << controller.admitted_count() << " contracts in force";
    if (!outcome.reverified.empty()) {
      std::cout << " (re-verified " << outcome.reverified.size() << ":";
      std::size_t shown = 0;
      for (const service::ContractVerdict& verdict : outcome.reverified) {
        if (verdict.kind == service::VerdictKind::reaffirmed) continue;
        std::cout << ' ' << verdict.contract << "=" << verdict_name(verdict.kind);
        if (verdict.kind == service::VerdictKind::shrunk) {
          std::cout << '@' << std::setprecision(2) << verdict.fraction << std::setprecision(0);
        }
        ++shown;
      }
      if (shown == 0) std::cout << " all reaffirmed";
      std::cout << ')';
    }
    std::cout << '\n';
  }

  const double capacity_end = topo.total_capacity().value();
  const double growth = capacity_end / capacity_start;
  const bool exact =
      controller.residual_snapshot() == controller.rebuild_residuals_from_scratch();

  std::cout << "\nyear summary:\n";
  std::cout << "  capacity " << std::setprecision(0) << capacity_start << " -> " << capacity_end
            << " Gbps (" << std::setprecision(2) << growth << "x)\n";
  std::cout << "  " << topo.mutation_log().since(0).size() << " logged mutations, final epoch "
            << topo.epoch() << '\n';
  std::cout << "  admissions: " << admitted_total << " admitted, " << rejected_total
            << " rejected; verdicts: " << reaffirmed << " reaffirmed, " << shrunk << " shrunk, "
            << revoked << " revoked\n";
  std::cout << "  incremental state identical to from-scratch rebuild: "
            << (exact ? "yes" : "NO") << '\n';

  if (metrics_json) {
    std::cout << obs::to_json(obs::Registry::global().snapshot()) << '\n';
  }
  // The demo's contract with CI: the network must have grown substantially
  // and the incremental lifecycle must have stayed exact.
  return exact && growth >= 1.8 ? 0 : 1;
}
