// Two years of quarterly entitlement operation (the paper's production run,
// §1: "deployed and operated for over two years"). Each quarter the manager
// renews contracts from the trailing history; the scorecard shows forecast
// quality, approval level, provisioning headroom, and SLO attainment.
// Pass --metrics-json=PATH (or bare --metrics-json for stdout) to dump the
// obs registry after the run: approval verdict counters, risk-sweep scenario
// tallies and placement-latency histograms for the whole two-year exercise.
#include <fstream>
#include <iostream>
#include <string>

#include "netent.h"

using namespace netent;

namespace {

void maybe_dump_metrics(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json") {
      obs::dump_global_json(std::cout);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      std::ofstream out(arg.substr(std::string("--metrics-json=").size()));
      if (!out) {
        std::cerr << "cannot open metrics output file from " << arg << '\n';
        continue;
      }
      obs::dump_global_json(out);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Rng rng(2026);
  topology::GeneratorConfig topo_config;
  topo_config.region_count = 8;
  topo_config.base_capacity = Gbps(700);
  const topology::Topology topo = topology::generate_backbone(topo_config, rng);

  core::LifecycleConfig config;
  config.quarters = 8;  // two years
  config.history_days = 120;
  config.fleet.region_count = 8;
  config.fleet.service_count = 8;
  config.fleet.high_touch_count = 3;
  config.fleet.total_gbps = 1500.0;
  config.manager.approval.realizations = 8;
  config.manager.approval.slo_availability = 0.999;
  config.manager.forecaster.prophet.use_yearly = false;
  config.manager.high_touch_npgs = {0, 1, 2};
  config.min_pipe_rate_gbps = 2.0;

  std::cout << "Operating the entitlement program for " << config.quarters
            << " quarters on an 8-region backbone ("
            << topo.total_capacity().tbps() << " Tbps), SLO target "
            << config.manager.approval.slo_availability << "...\n\n";

  const core::LifecycleSimulator simulator(topo, config);
  const auto records = simulator.run(rng);

  Table table({"quarter", "pipes", "contracts", "quota_smape_med", "egress_approved_pct",
               "provision_ratio", "slo_volume_wtd", "slo_worst"},
              3);
  for (const auto& record : records) {
    table.add_row({static_cast<double>(record.quarter), static_cast<double>(record.pipes),
                   static_cast<double>(record.contracts), record.quota_smape_median,
                   record.egress_approval_pct, record.provision_ratio,
                   record.slo_volume_weighted, record.slo_worst_achieved});
  }
  table.print(std::cout);

  std::cout << "\nReading: quota_smape_med ~ how closely the quarterly quota tracked the\n"
               "realized p95 usage (paper Figs 18-19: mostly < 0.4); provision_ratio is\n"
               "entitled/realized-peak headroom; slo_volume_wtd is the volume-weighted\n"
               "replayed availability of granted traffic (compare with the 0.999\n"
               "target); slo_worst exposes the realization-coverage gap per quarter.\n";
  maybe_dump_metrics(argc, argv);
  return 0;
}
