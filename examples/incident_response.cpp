// Incident response: replay the §2.2 misbehaving-service incidents (a client
// bug and a caching feature change) against a shared backbone port, first
// without entitlement enforcement (victims bleed), then with the full
// distributed enforcement plane (victims protected, culprit accountable).
#include <iostream>
#include <memory>

#include "netent.h"

using namespace netent;

namespace {

constexpr NpgId kVictim{1};
constexpr NpgId kCulprit{2};
constexpr QosClass kQos = QosClass::c2_low;

struct Minute {
  double t = 0.0;
  double victim_loss = 0.0;
  double culprit_loss = 0.0;
  double culprit_marked = 0.0;
};

/// Simulates 40 minutes of the incident. With `enforce_entitlements` the
/// culprit's agents mark its excess non-conforming; otherwise both services
/// share the class queue and drop pro-rata.
std::vector<Minute> run(bool enforce_entitlements) {
  const Gbps port_capacity(8000);
  const enforce::PriorityQueueSwitch port(port_capacity);

  const double victim_rate = 4200.0;
  const double culprit_base = 3500.0;
  const Gbps culprit_entitled(3600.0);

  // Incident 1: client bug ramps the culprit +50% within 3 minutes at t=5min,
  // holding 20 minutes. Incident 2: a caching feature change adds a 400 Gbps
  // step at t=30min.
  traffic::TimeSeries culprit(60.0, std::vector<double>(40, culprit_base));
  traffic::inject_bug_spike(culprit, 5.0 * 60.0, 3.0 * 60.0, 20.0 * 60.0, 0.5);
  traffic::inject_feature_step(culprit, 30.0 * 60.0, 400.0);

  enforce::RateStore store(30.0);
  enforce::BpfClassifier classifier{enforce::Marker(enforce::MarkingMode::host_based)};
  const enforce::EntitlementQuery query = [&](NpgId, QosClass, double) {
    return enforce::EntitlementAnswer{true, culprit_entitled};
  };
  enforce::HostAgent agent(HostId(1), kCulprit, kQos, enforce::AgentConfig{60.0, 30.0},
                           std::make_unique<enforce::StatefulMeter>(2.0, 0.5), query, store,
                           classifier);

  std::vector<Minute> minutes;
  const std::size_t queue = enforce::queue_for(enforce::dscp_for(kQos));
  for (int minute = 0; minute < 40; ++minute) {
    const double t = minute * 60.0;
    const double culprit_rate = culprit.at_time(t);

    double culprit_conf = culprit_rate;
    double culprit_nonconf = 0.0;
    if (enforce_entitlements) {
      agent.observe_local(Gbps(culprit_rate), Gbps(culprit_rate * (1.0 - agent.non_conform_ratio())));
      agent.tick(t);
      const enforce::EgressMeta meta{kCulprit, kQos, HostId(1), 0};
      // One aggregate "host" stands in for the fleet: the marked share comes
      // from the meter's ratio directly.
      (void)classifier.classify(meta);
      culprit_nonconf = culprit_rate * agent.non_conform_ratio();
      culprit_conf = culprit_rate - culprit_nonconf;
    }

    std::vector<double> offered(enforce::kQueueCount, 0.0);
    offered[queue] = victim_rate + culprit_conf;
    offered[enforce::kNonConformingQueue] += culprit_nonconf;
    const auto outcomes = port.transmit(offered);

    // In-class drops hit victim and culprit-conforming pro-rata.
    const double class_loss =
        offered[queue] > 0.0 ? outcomes[queue].dropped_gbps / offered[queue] : 0.0;
    const double nonconf_loss =
        culprit_nonconf > 0.0
            ? outcomes[enforce::kNonConformingQueue].dropped_gbps / culprit_nonconf
            : 0.0;

    Minute record;
    record.t = minute;
    record.victim_loss = class_loss;
    record.culprit_loss =
        culprit_rate > 0.0
            ? (class_loss * culprit_conf + nonconf_loss * culprit_nonconf) / culprit_rate
            : 0.0;
    record.culprit_marked = culprit_rate > 0.0 ? culprit_nonconf / culprit_rate : 0.0;
    minutes.push_back(record);
  }
  return minutes;
}

}  // namespace

int main() {
  std::cout << "Incident replay: victim (4.2 Tbps, well-behaved) and culprit (3.5 Tbps\n"
               "entitled 3.6 Tbps) share an 8 Tbps class queue. At t=5min a client bug\n"
               "ramps the culprit +50% in 3 minutes; at t=30min a caching change adds\n"
               "another 400 Gbps step.\n\n";

  const auto without = run(false);
  const auto with = run(true);

  Table table({"minute", "victim_loss_no_ent_pct", "victim_loss_ent_pct",
               "culprit_loss_ent_pct", "culprit_marked_pct"},
              2);
  for (std::size_t i = 0; i < without.size(); i += 3) {
    table.add_row({without[i].t, without[i].victim_loss * 100.0, with[i].victim_loss * 100.0,
                   with[i].culprit_loss * 100.0, with[i].culprit_marked * 100.0});
  }
  table.print(std::cout);

  double victim_peak_without = 0.0;
  double victim_peak_with = 0.0;
  for (std::size_t i = 0; i < without.size(); ++i) {
    victim_peak_without = std::max(victim_peak_without, without[i].victim_loss);
    victim_peak_with = std::max(victim_peak_with, with[i].victim_loss);
  }
  std::cout << "\nPeak victim loss: " << victim_peak_without * 100.0
            << "% without entitlement vs " << victim_peak_with * 100.0
            << "% with enforcement. Accountability: the loss lands on the culprit's "
               "non-conforming traffic, which is exactly the share above its contract.\n";
  return 0;
}
