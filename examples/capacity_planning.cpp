// Capacity planning from the network team's seat: run the entitlement
// granting pipeline for a fleet on a synthetic backbone, explore the
// SLO-vs-approval trade-off, and exercise the §8 bandwidth-negotiation flow
// for an under-approved request (counter-proposal of admittable volume).
#include <algorithm>
#include <iostream>

#include "netent.h"

using namespace netent;

int main() {
  Rng rng(7);

  // A tight backbone: demand is comparable to capacity, so SLO targets bite.
  topology::GeneratorConfig topo_config;
  topo_config.region_count = 8;
  topo_config.base_capacity = Gbps(450);
  const topology::Topology topo = topology::generate_backbone(topo_config, rng);

  traffic::FleetConfig fleet_config;
  fleet_config.region_count = 8;
  fleet_config.service_count = 10;
  fleet_config.high_touch_count = 4;
  fleet_config.total_gbps = 2200.0;
  const auto fleet = traffic::generate_fleet(fleet_config, rng);

  const auto histories = core::synthesize_histories(
      fleet, 60, 3600.0, traffic::DailyAggregate::max_avg_6h, 1.0, rng);
  std::cout << "Fleet: " << fleet.size() << " services, " << histories.size()
            << " pipes with observable history; backbone capacity "
            << topo.total_capacity().tbps() << " Tbps\n\n";

  // --- SLO sweep: what availability can we afford to promise? -------------
  Table sweep({"slo_availability", "egress_approved_pct", "contracts"}, 4);
  for (const double slo : {0.99, 0.999, 0.9998}) {
    core::ManagerConfig config;
    config.approval.slo_availability = slo;
    config.approval.realizations = 4;
    // Triple-failure scenarios: needed to resolve availability targets near
    // the enumeration's probability-mass ceiling.
    config.approval.scenarios.max_simultaneous = 3;
    config.approval.scenarios.min_probability = 1e-9;
    config.forecaster.prophet.use_yearly = false;
    config.high_touch_npgs = {0, 1, 2, 3};
    const core::EntitlementManager manager(topo, config);
    Rng cycle_rng(1);
    const core::CycleResult cycle = manager.run_cycle(histories, cycle_rng);
    sweep.add_row({slo, approval_percentage(cycle.approvals, hose::Direction::egress) * 100.0,
                   static_cast<double>(cycle.contracts.size())});
  }
  sweep.print(std::cout);

  // --- Bandwidth negotiation (§8): handle an under-approved hose. ---------
  core::ManagerConfig config;
  config.approval.slo_availability = 0.9998;
  config.approval.realizations = 4;
  config.approval.scenarios.max_simultaneous = 3;
  config.approval.scenarios.min_probability = 1e-9;
  config.forecaster.prophet.use_yearly = false;
  config.high_touch_npgs = {0, 1, 2, 3};
  const core::EntitlementManager manager(topo, config);
  Rng cycle_rng(1);
  const core::CycleResult cycle = manager.run_cycle(histories, cycle_rng);

  topology::Router router(topo, 4);
  approval::NegotiationConfig negotiation_config;
  negotiation_config.min_useful_fraction = 0.3;
  const approval::NegotiationEngine negotiator(router, config.approval, negotiation_config);
  Rng probe_rng(2);
  const auto proposals = negotiator.negotiate(cycle.approvals, probe_rng);

  const approval::CounterProposal* worst = nullptr;
  for (const auto& proposal : proposals) {
    if (worst == nullptr || proposal.residual > worst->residual) worst = &proposal;
  }
  std::cout << "\nNegotiation: the most under-approved hose is "
            << fleet[worst->original.npg.value()].name << " "
            << to_string(worst->original.direction) << " at region "
            << topo.region(worst->original.region).name << ": requested "
            << worst->original.rate.value() << " Gbps, guaranteed "
            << worst->guaranteed.value() << " Gbps at SLO "
            << config.approval.slo_availability << " (residual "
            << worst->residual.value() << " Gbps).\n"
            << "Automated counter-proposals (approval::NegotiationEngine):\n"
            << "  (a) accept the admittable " << worst->guaranteed.value()
            << " Gbps; carry the residual unguaranteed.\n";
  if (!worst->region_options.empty()) {
    std::cout << "  (b) move the residual to an alternative region:\n";
    for (const auto& option : worst->region_options) {
      std::cout << "        " << topo.region(option.region).name << " guarantees "
                << option.guaranteed.value() << " Gbps of the residual\n";
    }
  }
  if (!worst->qos_options.empty()) {
    std::cout << "  (c) demote the residual to a lower QoS class:\n";
    for (const auto& option : worst->qos_options) {
      std::cout << "        " << to_string(option.qos) << " guarantees "
                << option.guaranteed.value() << " Gbps of the residual\n";
    }
  }
  if (worst->region_options.empty() && worst->qos_options.empty()) {
    std::cout << "  (no useful alternative found: reduce the request or add capacity)\n";
  }
  return 0;
}
