// Contract operations: the durable-artifact workflow around the contract
// database — run a granting cycle, produce the operator report, export the
// contracts to the text format, re-import them, and answer the queries the
// enforcement agents would issue against the restored database.
//
// Usage: ./contract_ops [--export=FILE]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "netent.h"

using namespace netent;

int main(int argc, char** argv) {
  std::string export_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--export=", 0) == 0) export_path = arg.substr(9);
  }

  Rng rng(11);
  topology::GeneratorConfig topo_config;
  topo_config.region_count = 6;
  topo_config.base_capacity = Gbps(500);
  const topology::Topology topo = topology::generate_backbone(topo_config, rng);

  traffic::FleetConfig fleet_config;
  fleet_config.region_count = 6;
  fleet_config.service_count = 6;
  fleet_config.high_touch_count = 3;
  fleet_config.total_gbps = 900.0;
  const auto fleet = traffic::generate_fleet(fleet_config, rng);
  const auto histories =
      core::synthesize_histories(fleet, 60, 3600.0, traffic::DailyAggregate::max_avg_6h, 1.0, rng);

  core::ManagerConfig config;
  config.approval.realizations = 4;
  config.approval.slo_availability = 0.999;
  config.forecaster.prophet.use_yearly = false;
  config.high_touch_npgs = {0, 1, 2};
  core::EntitlementManager manager(topo, config);
  const auto name_of = [&fleet](NpgId npg) {
    return npg.value() < fleet.size() ? fleet[npg.value()].name : std::string();
  };
  manager.set_name_lookup(name_of);
  const core::CycleResult cycle = manager.run_cycle(histories, rng);

  // --- 1. The operator report. --------------------------------------------
  core::write_cycle_report(std::cout, cycle, topo, name_of);

  // --- 2. Export to the durable text format. -------------------------------
  const std::string exported = core::contracts_to_string(cycle.contracts);
  std::cout << "Exported " << cycle.contracts.size() << " contracts ("
            << exported.size() << " bytes)";
  if (!export_path.empty()) {
    std::ofstream out(export_path);
    out << exported;
    std::cout << " to " << export_path;
  }
  std::cout << "\n\nFirst contract block:\n";
  std::istringstream preview(exported);
  std::string line;
  while (std::getline(preview, line)) {
    std::cout << "  " << line << '\n';
    if (line == "end") break;
  }

  // --- 3. Re-import and answer enforcement queries. ------------------------
  const auto reparsed = core::contracts_from_string(exported);
  if (!reparsed) {
    std::cerr << "re-import failed: " << reparsed.error().message << '\n';
    return 1;
  }
  const core::ContractDb& restored = *reparsed;
  std::cout << "\nRestored " << restored.size() << " contracts; enforcement queries:\n";
  const auto query = restored.query_adapter();
  for (const auto& svc : fleet) {
    for (const QosClass qos : qos_priority_order()) {
      const auto answer = query(svc.id, qos, 10.0);
      if (answer.found && answer.entitled_rate > Gbps(1)) {
        std::cout << "  " << svc.name << " " << to_string(qos) << " -> EntitledRate "
                  << answer.entitled_rate.value() << " Gbps\n";
      }
    }
  }
  return 0;
}
