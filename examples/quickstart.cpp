// Quickstart: the whole entitlement lifecycle on the paper's Figure 6
// five-region example.
//
//   1. Observed traffic history for the "Ads" service (pipes from region A).
//   2. Demand forecast -> SLI -> hose representation (+ segmentation).
//   3. Risk-aware contract approval at a 0.9998 availability SLO.
//   4. The contract lands in the contract database.
//   5. A host enforcement agent queries the contract and marks traffic.
//
// Build & run:  ./quickstart
#include <iostream>
#include <memory>

#include "netent.h"

using namespace netent;

int main() {
  // --- The network: Figure 6's five regions A..E. ------------------------
  const topology::Topology topo = topology::figure6_topology();
  std::cout << "Backbone: " << topo.region_count() << " regions, " << topo.link_count()
            << " directed links, " << topo.total_capacity().tbps() << " Tbps total capacity\n";

  // --- Observed history: 120 days of daily usage per pipe. ---------------
  // Ads sends from region A to B/C/D/E with a weekly pattern; means match
  // the paper's 300/100/250/250 Gbps example.
  std::vector<core::PipeHistory> histories;
  const double bases[] = {300.0, 100.0, 250.0, 250.0};
  for (std::uint32_t dst = 1; dst <= 4; ++dst) {
    core::PipeHistory history;
    history.npg = NpgId(1);
    history.qos = QosClass::c1_low;
    history.src = RegionId(0);
    history.dst = RegionId(dst);
    for (int day = 0; day < 120; ++day) {
      const double weekly = 1.0 + 0.08 * std::sin(2.0 * 3.14159265 * day / 7.0);
      history.daily.push_back(bases[dst - 1] * weekly);
    }
    histories.push_back(std::move(history));
  }

  // --- One entitlement cycle. ---------------------------------------------
  core::ManagerConfig config;
  config.approval.slo_availability = 0.9998;
  config.approval.realizations = 8;
  config.forecaster.prophet.use_yearly = false;
  config.high_touch_npgs = {1};  // Ads is high-touch
  core::EntitlementManager manager(topo, config);
  manager.set_name_lookup([](NpgId npg) { return npg == NpgId(1) ? "Ads" : "unknown"; });

  Rng rng(1);
  const core::CycleResult cycle = manager.run_cycle(histories, rng);

  std::cout << "\nForecast SLI records: " << cycle.sli.size() << "\n";
  for (const auto& sli : cycle.sli) {
    std::cout << "  Ads " << to_string(sli.qos) << " " << topo.region(sli.src).name << "->"
              << topo.region(sli.dst).name << ": " << sli.bandwidth.value() << " Gbps\n";
  }

  std::cout << "\nHose requests and approvals:\n";
  for (const auto& approval : cycle.approvals) {
    std::cout << "  " << topo.region(approval.request.region).name << " "
              << to_string(approval.request.direction) << " hose: requested "
              << approval.request.rate.value() << " Gbps, approved "
              << approval.approved.value() << " Gbps\n";
  }

  if (!cycle.segments.empty()) {
    std::cout << "\nSegmented hose (Algorithm 1) applied to "
              << cycle.segments.size() << " group(s):\n";
    for (const auto& group : cycle.segments) {
      for (const auto& segment : group.segments) {
        std::cout << "  segment from region " << segment.src << " -> {";
        for (const auto m : segment.members) std::cout << topo.region(RegionId(m)).name;
        std::cout << "} capped at " << segment.cap_gbps << " Gbps\n";
      }
    }
  }

  // --- The contract, as the service team sees it. -------------------------
  const core::EntitlementContract* contract = cycle.contracts.find(NpgId(1));
  std::cout << "\nContract for " << contract->npg_name
            << " (SLO availability " << contract->slo_availability << "):\n";
  for (const auto& entitlement : contract->entitlements) {
    std::cout << "  <Ads, " << to_string(entitlement.qos) << ", "
              << topo.region(entitlement.region).name << ", "
              << entitlement.entitled_rate.value() << " Gbps, "
              << to_string(entitlement.direction) << ", day 0-90>\n";
  }

  // --- Run-time enforcement hooks straight off the database. --------------
  enforce::RateStore store(1.0);
  enforce::BpfClassifier classifier{enforce::Marker(enforce::MarkingMode::host_based)};
  enforce::HostAgent agent(HostId(1), NpgId(1), QosClass::c1_low, enforce::AgentConfig{},
                           std::make_unique<enforce::StatefulMeter>(),
                           cycle.contracts.query_adapter(), store, classifier);

  // The service misbehaves: it sends 3x its entitlement.
  const Gbps entitled = *cycle.contracts.service_entitled_rate(NpgId(1), QosClass::c1_low, 0.0);
  const Gbps misbehaving = entitled * 3.0;
  agent.observe_local(misbehaving, misbehaving);
  agent.tick(0.0);   // publish
  agent.tick(10.0);  // metering cycle sees the aggregate
  std::cout << "\nEnforcement: service sends " << misbehaving.value() << " Gbps against "
            << entitled.value() << " Gbps entitled -> agent marks "
            << agent.non_conform_ratio() * 100.0
            << "% of traffic non-conforming (DSCP " << int{enforce::kNonConformingDscp}
            << ", lowest-priority queue).\n";
  return 0;
}
