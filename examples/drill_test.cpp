// The §6 enforcement drill as an operator would run it: pick a big storage
// service, cut its entitlement, ramp ACL drops over its non-conforming
// traffic, watch network- and application-level metrics, and roll back.
//
// Usage: ./drill_test [--marker=host|flow] [--meter=stateful|stateless]
#include <iostream>
#include <string>

#include "netent.h"

using namespace netent;

namespace {

std::string flag_value(int argc, char** argv, const std::string& key,
                       const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

double stage_mean(const std::vector<sim::DrillTick>& ticks, double t0_min, double t1_min,
                  double sim::DrillTick::* field) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& tick : ticks) {
    if (tick.t_seconds >= t0_min * 60.0 && tick.t_seconds < t1_min * 60.0) {
      sum += tick.*field;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  sim::DrillConfig config;
  config.host_count = 200;
  config.marking = flag_value(argc, argv, "marker", "host") == "flow"
                       ? enforce::MarkingMode::flow_based
                       : enforce::MarkingMode::host_based;
  config.stateful_meter = flag_value(argc, argv, "meter", "stateful") != "stateless";

  std::cout << "Coldstorage enforcement drill: " << config.host_count << " hosts, "
            << to_string(config.marking) << " marking, "
            << (config.stateful_meter ? "stateful" : "stateless") << " metering\n"
            << "Timeline: entitled " << config.entitled_initial.value() << " -> "
            << config.entitled_reduced.value() << " Gbps @30min; ACL drops 12.5% @65min, "
            << "50% @100min, 100% @135min; rollback @170min.\n\n";

  sim::DrillSim drill(config, Rng(42));
  const auto ticks = drill.run();

  struct Stage {
    const char* name;
    double t0, t1;
  };
  const Stage stages[] = {{"baseline (0-30min)", 5, 30},
                          {"entitled cut, no ACL (30-65min)", 35, 65},
                          {"ACL 12.5% (65-100min)", 80, 100},
                          {"ACL 50% (100-135min)", 115, 135},
                          {"ACL 100% (135-170min)", 150, 170},
                          {"after rollback (170-210min)", 185, 210}};

  Table table({"stage", "total_g", "conform_g", "loss_nc_pct", "read_ms", "write_ms",
               "block_err_pct"},
              1);
  for (const Stage& stage : stages) {
    table.add_row({std::string(stage.name),
                   stage_mean(ticks, stage.t0, stage.t1, &sim::DrillTick::total_rate),
                   stage_mean(ticks, stage.t0, stage.t1, &sim::DrillTick::conform_rate),
                   stage_mean(ticks, stage.t0, stage.t1,
                              &sim::DrillTick::nonconform_loss_ratio) * 100.0,
                   stage_mean(ticks, stage.t0, stage.t1, &sim::DrillTick::read_latency_ms),
                   stage_mean(ticks, stage.t0, stage.t1, &sim::DrillTick::write_latency_ms),
                   stage_mean(ticks, stage.t0, stage.t1, &sim::DrillTick::block_error_rate) *
                       100.0});
  }
  table.print(std::cout);

  const double conform_at_full_drop =
      stage_mean(ticks, 150, 170, &sim::DrillTick::conform_rate);
  std::cout << "\nVerdict: during the 100% stage the conforming rate averaged "
            << conform_at_full_drop << " Gbps against a " << config.entitled_reduced.value()
            << " Gbps entitlement -> "
            << (std::abs(conform_at_full_drop - config.entitled_reduced.value()) <
                        config.entitled_reduced.value() * 0.2
                    ? "the contract was enforced."
                    : "the contract was NOT enforced (try --meter=stateful).")
            << '\n';
  return 0;
}
