// Online admission: contracts "can be requested at any time" (§5). This
// example drives the streaming admission service — admit a handful of NPGs
// one request at a time, resize one of them, release another, and show that
// the incrementally maintained risk state matches a from-scratch replay.
//
// Usage: ./online_admission [--metrics-json]
#include <iostream>
#include <string>

#include "netent.h"

using namespace netent;

int main(int argc, char** argv) {
  bool metrics_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json") metrics_json = true;
  }

  // The five-region worked example of Figure 6: well connected, so the demo
  // shows admissions succeeding until capacity (not connectivity) binds.
  const topology::Topology topo = topology::figure6_topology();

  service::AdmissionConfig config;
  config.approval.realizations = 4;
  config.approval.slo_availability = 0.999;
  config.seed = 23;
  config.background = false;  // deterministic windows for a scripted demo
  service::AdmissionController controller(topo, config);

  // Matched egress+ingress hoses so the realization drawing has traffic on
  // both sides of the hose space (a lone egress hose is unconstrained).
  const auto hoses = [](NpgId npg, QosClass qos, std::uint32_t src, std::uint32_t dst,
                        double gbps) {
    hose::HoseRequest egress;
    egress.npg = npg;
    egress.qos = qos;
    egress.region = RegionId(src);
    egress.direction = hose::Direction::egress;
    egress.rate = Gbps(gbps);
    hose::HoseRequest ingress = egress;
    ingress.region = RegionId(dst);
    ingress.direction = hose::Direction::ingress;
    return std::vector<hose::HoseRequest>{egress, ingress};
  };

  // --- 1. Stream three admissions. -----------------------------------------
  std::cout << "Streaming admissions:\n";
  service::ContractId ads = 0;
  service::ContractId batch = 0;
  for (int i = 0; i < 3; ++i) {
    const NpgId npg(static_cast<std::uint32_t>(i + 1));
    const std::string name = "svc" + std::to_string(i + 1);
    const auto outcome = controller.admit(
        npg, name,
        hoses(npg, i == 2 ? QosClass::c3_low : QosClass::c1_low,
              static_cast<std::uint32_t>(i % 5), static_cast<std::uint32_t>((i + 2) % 5),
              120.0 + 40.0 * i));
    double approved = 0.0;
    for (const auto& approval : outcome.approvals) approved += approval.approved.value();
    std::cout << "  " << name << ": "
              << (outcome.status == service::AdmissionStatus::admitted ? "admitted" : "rejected")
              << " at " << approved << " Gbps (contract #" << outcome.contract << ")\n";
    if (i == 0) ads = outcome.contract;
    if (i == 2) batch = outcome.contract;
  }

  // --- 2. Resize one contract, release another. ----------------------------
  const auto resized = controller.resize(ads, hoses(NpgId(1), QosClass::c1_low, 0, 3, 220.0));
  std::cout << "Resize contract #" << ads << ": "
            << (resized.status == service::AdmissionStatus::resized ? "accepted" : "rejected")
            << '\n';
  const auto released = controller.release(batch);
  std::cout << "Release contract #" << batch << ": "
            << (released.status == service::AdmissionStatus::released ? "done" : "failed")
            << "; " << controller.admitted_count() << " contracts remain\n";

  // --- 3. The incremental state matches a from-scratch replay. -------------
  const bool exact = controller.residual_snapshot() == controller.rebuild_residuals_from_scratch();
  std::cout << "Incremental residuals == from-scratch rebuild: "
            << (exact ? "yes (bit-identical)" : "NO — BUG") << '\n';

  if (metrics_json) {
    std::cout << obs::to_json(obs::Registry::global().snapshot()) << '\n';
  }
  return exact ? 0 : 1;
}
