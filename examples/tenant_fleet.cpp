// Declarative contract front-end, end to end (README quickstart): a tenant
// writes a JSON entitlement spec, the spec layer parses and compiles it into
// an admission request, the service decides, and rejections are resolved by
// the tenant's negotiation policy. The second half runs a small closed-loop
// TenantFleet so the negotiation strategies fire visibly.
//
// Usage: ./tenant_fleet [--metrics-json]
#include <iostream>
#include <string>

#include "netent.h"

using namespace netent;

int main(int argc, char** argv) {
  bool metrics_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json") metrics_json = true;
  }

  // --- 1. One spec, admitted end to end. -----------------------------------
  // The declarative form: WHAT the tenant is entitled to, not how to ask.
  const std::string spec_text = R"({
    "version": 1,
    "tenant": "web-frontend",
    "npg": 1,
    "action": "admit",
    "qos": "c2_low",
    "slo_availability": 0.999,
    "window": {"start_seconds": 0, "end_seconds": 7776000},
    "policy": {"strategy": "accept_partial", "min_accept_fraction": 0.1},
    "hoses": [
      {"region": 0, "direction": "egress", "rate_gbps": 80},
      {"region": 3, "direction": "ingress", "rate_gbps": 80}
    ]
  })";

  const Expected<spec::EntitlementSpec> parsed = spec::parse_spec(spec_text);
  if (!parsed) {
    std::cerr << "spec rejected: " << parsed.error().message << '\n';
    return 1;
  }
  std::cout << "Parsed spec for tenant '" << parsed->tenant << "': " << parsed->hoses.size()
            << " hoses, qos " << to_string(parsed->qos) << ", strategy "
            << to_string(parsed->policy.strategy) << '\n';

  const topology::Topology topo = topology::figure6_topology();
  service::AdmissionConfig config;
  config.approval.realizations = 4;
  config.approval.slo_availability = 0.999;
  config.seed = 23;
  config.background = false;
  config.admit_min_fraction = 1.0;  // shortfalls become rejections + proposals
  config.attach_counter_proposals = true;
  service::AdmissionController controller(topo, config);

  const Expected<service::AdmissionRequest> request =
      spec::compile_spec(*parsed, topo.region_count());
  if (!request) {
    std::cerr << "spec does not compile: " << request.error().message << '\n';
    return 1;
  }
  auto future = controller.submit(*request);
  controller.flush();
  const service::AdmissionOutcome outcome = future.get();
  std::cout << "Admission: "
            << (outcome.status == service::AdmissionStatus::admitted ? "admitted" : "rejected")
            << " (contract #" << outcome.contract << ")\n";

  // A malformed spec never crashes — it returns a typed, located error.
  const auto broken = spec::parse_spec(R"({"version": 1, "tenant": "x", "npg": "seven"})");
  std::cout << "Malformed spec -> " << to_string(broken.error().code) << ": "
            << broken.error().message << '\n';

  // --- 2. A small closed-loop fleet. ---------------------------------------
  // Mixed strategies, churn, contention from a few heavy premium tenants;
  // every request flows through JSON -> parse -> compile -> admit, and every
  // rejection through the tenant's PolicyEngine strategy.
  // A tighter backbone than Figure 6, so premium capacity actually binds
  // and the heavy tenants' rejections carry counter-proposals to resolve.
  Rng topo_rng(7);
  topology::GeneratorConfig topo_config;
  topo_config.region_count = 6;
  topo_config.base_capacity = Gbps(100);
  topo_config.max_parallel_fibers = 2;
  const topology::Topology fleet_topo = topology::generate_backbone(topo_config, topo_rng);

  spec::FleetConfig fleet_config;
  fleet_config.tenants = 64;
  fleet_config.rounds = 4;
  fleet_config.regions = fleet_topo.region_count();
  fleet_config.heavy_every = 3;
  fleet_config.heavy_rate_gbps = 60.0;
  fleet_config.base_rate_lo_gbps = 1.0;
  fleet_config.base_rate_hi_gbps = 4.0;
  fleet_config.seed = 2022;
  fleet_config.slo_availability = 0.99;

  service::AdmissionConfig fleet_service = config;
  fleet_service.approval.realizations = 2;
  fleet_service.approval.slo_availability = 0.99;  // max_simultaneous=1 enumerates < 99.9% mass
  fleet_service.approval.scenarios.max_simultaneous = 1;
  service::AdmissionController fleet_controller(fleet_topo, fleet_service);
  spec::TenantFleet fleet(fleet_controller, fleet_config);
  const spec::FleetReport report = fleet.run();

  std::cout << "\nFleet: " << fleet_config.tenants << " tenants, " << fleet_config.rounds
            << " rounds, " << report.decisions << " decisions\n"
            << "  admitted " << report.admitted << ", rejected " << report.rejected
            << ", resized " << report.resized << ", released " << report.released << '\n'
            << "  negotiation: " << report.resubmits << " resubmits, " << report.waits
            << " retries scheduled, " << report.give_ups << " give-ups\n";
  for (std::size_t s = 0; s < spec::kStrategyCount; ++s) {
    std::cout << "    " << to_string(static_cast<spec::Strategy>(s)) << ": "
              << report.strategy_resolutions[s] << " resolutions\n";
  }
  std::cout << "  transcript fingerprint: " << report.transcript_fingerprint << '\n';

  if (metrics_json) obs::dump_global_json(std::cout);
  return 0;
}
