file(REMOVE_RECURSE
  "CMakeFiles/test_ingress_meter.dir/test_ingress_meter.cpp.o"
  "CMakeFiles/test_ingress_meter.dir/test_ingress_meter.cpp.o.d"
  "test_ingress_meter"
  "test_ingress_meter.pdb"
  "test_ingress_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingress_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
