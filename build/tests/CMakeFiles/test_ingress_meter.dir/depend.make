# Empty dependencies file for test_ingress_meter.
# This may be replaced when dependencies are built.
