# Empty compiler generated dependencies file for test_drill.
# This may be replaced when dependencies are built.
