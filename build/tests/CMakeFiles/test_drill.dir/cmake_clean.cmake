file(REMOVE_RECURSE
  "CMakeFiles/test_drill.dir/test_drill.cpp.o"
  "CMakeFiles/test_drill.dir/test_drill.cpp.o.d"
  "test_drill"
  "test_drill.pdb"
  "test_drill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
