# Empty compiler generated dependencies file for test_sli.
# This may be replaced when dependencies are built.
