file(REMOVE_RECURSE
  "CMakeFiles/test_sli.dir/test_sli.cpp.o"
  "CMakeFiles/test_sli.dir/test_sli.cpp.o.d"
  "test_sli"
  "test_sli.pdb"
  "test_sli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
