# Empty compiler generated dependencies file for test_risk_simulator.
# This may be replaced when dependencies are built.
