file(REMOVE_RECURSE
  "CMakeFiles/test_risk_simulator.dir/test_risk_simulator.cpp.o"
  "CMakeFiles/test_risk_simulator.dir/test_risk_simulator.cpp.o.d"
  "test_risk_simulator"
  "test_risk_simulator.pdb"
  "test_risk_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_risk_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
