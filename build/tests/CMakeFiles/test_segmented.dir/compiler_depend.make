# Empty compiler generated dependencies file for test_segmented.
# This may be replaced when dependencies are built.
