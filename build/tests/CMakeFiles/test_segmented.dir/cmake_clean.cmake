file(REMOVE_RECURSE
  "CMakeFiles/test_segmented.dir/test_segmented.cpp.o"
  "CMakeFiles/test_segmented.dir/test_segmented.cpp.o.d"
  "test_segmented"
  "test_segmented.pdb"
  "test_segmented[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
