# Empty compiler generated dependencies file for test_backtest.
# This may be replaced when dependencies are built.
