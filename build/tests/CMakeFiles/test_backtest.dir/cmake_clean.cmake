file(REMOVE_RECURSE
  "CMakeFiles/test_backtest.dir/test_backtest.cpp.o"
  "CMakeFiles/test_backtest.dir/test_backtest.cpp.o.d"
  "test_backtest"
  "test_backtest.pdb"
  "test_backtest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
