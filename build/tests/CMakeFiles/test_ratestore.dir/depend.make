# Empty dependencies file for test_ratestore.
# This may be replaced when dependencies are built.
