file(REMOVE_RECURSE
  "CMakeFiles/test_ratestore.dir/test_ratestore.cpp.o"
  "CMakeFiles/test_ratestore.dir/test_ratestore.cpp.o.d"
  "test_ratestore"
  "test_ratestore.pdb"
  "test_ratestore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
