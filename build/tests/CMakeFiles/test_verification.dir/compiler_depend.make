# Empty compiler generated dependencies file for test_verification.
# This may be replaced when dependencies are built.
