file(REMOVE_RECURSE
  "CMakeFiles/test_tree_gbdt.dir/test_tree_gbdt.cpp.o"
  "CMakeFiles/test_tree_gbdt.dir/test_tree_gbdt.cpp.o.d"
  "test_tree_gbdt"
  "test_tree_gbdt.pdb"
  "test_tree_gbdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
