# Empty compiler generated dependencies file for test_tree_gbdt.
# This may be replaced when dependencies are built.
