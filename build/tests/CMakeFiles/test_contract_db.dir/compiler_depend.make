# Empty compiler generated dependencies file for test_contract_db.
# This may be replaced when dependencies are built.
