file(REMOVE_RECURSE
  "CMakeFiles/test_contract_db.dir/test_contract_db.cpp.o"
  "CMakeFiles/test_contract_db.dir/test_contract_db.cpp.o.d"
  "test_contract_db"
  "test_contract_db.pdb"
  "test_contract_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contract_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
