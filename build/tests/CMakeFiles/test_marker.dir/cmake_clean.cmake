file(REMOVE_RECURSE
  "CMakeFiles/test_marker.dir/test_marker.cpp.o"
  "CMakeFiles/test_marker.dir/test_marker.cpp.o.d"
  "test_marker"
  "test_marker.pdb"
  "test_marker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
