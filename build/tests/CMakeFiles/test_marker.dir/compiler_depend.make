# Empty compiler generated dependencies file for test_marker.
# This may be replaced when dependencies are built.
