# Empty dependencies file for test_prophet.
# This may be replaced when dependencies are built.
