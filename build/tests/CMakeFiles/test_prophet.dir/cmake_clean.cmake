file(REMOVE_RECURSE
  "CMakeFiles/test_prophet.dir/test_prophet.cpp.o"
  "CMakeFiles/test_prophet.dir/test_prophet.cpp.o.d"
  "test_prophet"
  "test_prophet.pdb"
  "test_prophet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prophet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
