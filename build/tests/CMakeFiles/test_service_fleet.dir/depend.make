# Empty dependencies file for test_service_fleet.
# This may be replaced when dependencies are built.
