file(REMOVE_RECURSE
  "CMakeFiles/test_service_fleet.dir/test_service_fleet.cpp.o"
  "CMakeFiles/test_service_fleet.dir/test_service_fleet.cpp.o.d"
  "test_service_fleet"
  "test_service_fleet.pdb"
  "test_service_fleet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
