file(REMOVE_RECURSE
  "CMakeFiles/test_connections.dir/test_connections.cpp.o"
  "CMakeFiles/test_connections.dir/test_connections.cpp.o.d"
  "test_connections"
  "test_connections.pdb"
  "test_connections[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
