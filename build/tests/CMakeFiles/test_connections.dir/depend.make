# Empty dependencies file for test_connections.
# This may be replaced when dependencies are built.
