file(REMOVE_RECURSE
  "CMakeFiles/test_bpf.dir/test_bpf.cpp.o"
  "CMakeFiles/test_bpf.dir/test_bpf.cpp.o.d"
  "test_bpf"
  "test_bpf.pdb"
  "test_bpf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
