# Empty dependencies file for test_bpf.
# This may be replaced when dependencies are built.
