# Empty compiler generated dependencies file for test_approval.
# This may be replaced when dependencies are built.
