file(REMOVE_RECURSE
  "CMakeFiles/test_approval.dir/test_approval.cpp.o"
  "CMakeFiles/test_approval.dir/test_approval.cpp.o.d"
  "test_approval"
  "test_approval.pdb"
  "test_approval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
