# Empty dependencies file for test_switchport.
# This may be replaced when dependencies are built.
