file(REMOVE_RECURSE
  "CMakeFiles/test_switchport.dir/test_switchport.cpp.o"
  "CMakeFiles/test_switchport.dir/test_switchport.cpp.o.d"
  "test_switchport"
  "test_switchport.pdb"
  "test_switchport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switchport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
