file(REMOVE_RECURSE
  "CMakeFiles/drill_test.dir/drill_test.cpp.o"
  "CMakeFiles/drill_test.dir/drill_test.cpp.o.d"
  "drill_test"
  "drill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
