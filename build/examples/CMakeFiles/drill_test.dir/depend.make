# Empty dependencies file for drill_test.
# This may be replaced when dependencies are built.
