# Empty dependencies file for two_year_operation.
# This may be replaced when dependencies are built.
