file(REMOVE_RECURSE
  "CMakeFiles/two_year_operation.dir/two_year_operation.cpp.o"
  "CMakeFiles/two_year_operation.dir/two_year_operation.cpp.o.d"
  "two_year_operation"
  "two_year_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_year_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
