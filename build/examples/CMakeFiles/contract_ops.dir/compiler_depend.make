# Empty compiler generated dependencies file for contract_ops.
# This may be replaced when dependencies are built.
