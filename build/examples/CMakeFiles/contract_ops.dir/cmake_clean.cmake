file(REMOVE_RECURSE
  "CMakeFiles/contract_ops.dir/contract_ops.cpp.o"
  "CMakeFiles/contract_ops.dir/contract_ops.cpp.o.d"
  "contract_ops"
  "contract_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
