
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/contract_ops.cpp" "examples/CMakeFiles/contract_ops.dir/contract_ops.cpp.o" "gcc" "examples/CMakeFiles/contract_ops.dir/contract_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/netent_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/approval/CMakeFiles/netent_approval.dir/DependInfo.cmake"
  "/root/repo/build/src/hose/CMakeFiles/netent_hose.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/netent_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/risk/CMakeFiles/netent_risk.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netent_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/enforce/CMakeFiles/netent_enforce.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
