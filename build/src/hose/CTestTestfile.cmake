# CMake generated Testfile for 
# Source directory: /root/repo/src/hose
# Build directory: /root/repo/build/src/hose
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
