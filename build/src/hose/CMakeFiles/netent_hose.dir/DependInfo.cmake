
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hose/balance.cpp" "src/hose/CMakeFiles/netent_hose.dir/balance.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/balance.cpp.o.d"
  "/root/repo/src/hose/cluster.cpp" "src/hose/CMakeFiles/netent_hose.dir/cluster.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/cluster.cpp.o.d"
  "/root/repo/src/hose/coverage.cpp" "src/hose/CMakeFiles/netent_hose.dir/coverage.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/coverage.cpp.o.d"
  "/root/repo/src/hose/requests.cpp" "src/hose/CMakeFiles/netent_hose.dir/requests.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/requests.cpp.o.d"
  "/root/repo/src/hose/segmented.cpp" "src/hose/CMakeFiles/netent_hose.dir/segmented.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/segmented.cpp.o.d"
  "/root/repo/src/hose/space.cpp" "src/hose/CMakeFiles/netent_hose.dir/space.cpp.o" "gcc" "src/hose/CMakeFiles/netent_hose.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netent_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/netent_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
