# Empty dependencies file for netent_hose.
# This may be replaced when dependencies are built.
