file(REMOVE_RECURSE
  "CMakeFiles/netent_hose.dir/balance.cpp.o"
  "CMakeFiles/netent_hose.dir/balance.cpp.o.d"
  "CMakeFiles/netent_hose.dir/cluster.cpp.o"
  "CMakeFiles/netent_hose.dir/cluster.cpp.o.d"
  "CMakeFiles/netent_hose.dir/coverage.cpp.o"
  "CMakeFiles/netent_hose.dir/coverage.cpp.o.d"
  "CMakeFiles/netent_hose.dir/requests.cpp.o"
  "CMakeFiles/netent_hose.dir/requests.cpp.o.d"
  "CMakeFiles/netent_hose.dir/segmented.cpp.o"
  "CMakeFiles/netent_hose.dir/segmented.cpp.o.d"
  "CMakeFiles/netent_hose.dir/space.cpp.o"
  "CMakeFiles/netent_hose.dir/space.cpp.o.d"
  "libnetent_hose.a"
  "libnetent_hose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_hose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
