file(REMOVE_RECURSE
  "libnetent_hose.a"
)
