
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/backtest.cpp" "src/forecast/CMakeFiles/netent_forecast.dir/backtest.cpp.o" "gcc" "src/forecast/CMakeFiles/netent_forecast.dir/backtest.cpp.o.d"
  "/root/repo/src/forecast/gbdt.cpp" "src/forecast/CMakeFiles/netent_forecast.dir/gbdt.cpp.o" "gcc" "src/forecast/CMakeFiles/netent_forecast.dir/gbdt.cpp.o.d"
  "/root/repo/src/forecast/prophet.cpp" "src/forecast/CMakeFiles/netent_forecast.dir/prophet.cpp.o" "gcc" "src/forecast/CMakeFiles/netent_forecast.dir/prophet.cpp.o.d"
  "/root/repo/src/forecast/sli.cpp" "src/forecast/CMakeFiles/netent_forecast.dir/sli.cpp.o" "gcc" "src/forecast/CMakeFiles/netent_forecast.dir/sli.cpp.o.d"
  "/root/repo/src/forecast/tree.cpp" "src/forecast/CMakeFiles/netent_forecast.dir/tree.cpp.o" "gcc" "src/forecast/CMakeFiles/netent_forecast.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/netent_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netent_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
