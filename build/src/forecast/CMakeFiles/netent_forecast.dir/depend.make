# Empty dependencies file for netent_forecast.
# This may be replaced when dependencies are built.
