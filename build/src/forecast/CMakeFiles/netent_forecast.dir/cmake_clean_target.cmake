file(REMOVE_RECURSE
  "libnetent_forecast.a"
)
