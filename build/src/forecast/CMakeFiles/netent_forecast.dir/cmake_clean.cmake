file(REMOVE_RECURSE
  "CMakeFiles/netent_forecast.dir/backtest.cpp.o"
  "CMakeFiles/netent_forecast.dir/backtest.cpp.o.d"
  "CMakeFiles/netent_forecast.dir/gbdt.cpp.o"
  "CMakeFiles/netent_forecast.dir/gbdt.cpp.o.d"
  "CMakeFiles/netent_forecast.dir/prophet.cpp.o"
  "CMakeFiles/netent_forecast.dir/prophet.cpp.o.d"
  "CMakeFiles/netent_forecast.dir/sli.cpp.o"
  "CMakeFiles/netent_forecast.dir/sli.cpp.o.d"
  "CMakeFiles/netent_forecast.dir/tree.cpp.o"
  "CMakeFiles/netent_forecast.dir/tree.cpp.o.d"
  "libnetent_forecast.a"
  "libnetent_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
