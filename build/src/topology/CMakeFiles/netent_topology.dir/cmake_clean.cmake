file(REMOVE_RECURSE
  "CMakeFiles/netent_topology.dir/generator.cpp.o"
  "CMakeFiles/netent_topology.dir/generator.cpp.o.d"
  "CMakeFiles/netent_topology.dir/max_flow.cpp.o"
  "CMakeFiles/netent_topology.dir/max_flow.cpp.o.d"
  "CMakeFiles/netent_topology.dir/paths.cpp.o"
  "CMakeFiles/netent_topology.dir/paths.cpp.o.d"
  "CMakeFiles/netent_topology.dir/routing.cpp.o"
  "CMakeFiles/netent_topology.dir/routing.cpp.o.d"
  "CMakeFiles/netent_topology.dir/topology.cpp.o"
  "CMakeFiles/netent_topology.dir/topology.cpp.o.d"
  "libnetent_topology.a"
  "libnetent_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
