file(REMOVE_RECURSE
  "libnetent_topology.a"
)
