# Empty compiler generated dependencies file for netent_topology.
# This may be replaced when dependencies are built.
