
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/risk/failure.cpp" "src/risk/CMakeFiles/netent_risk.dir/failure.cpp.o" "gcc" "src/risk/CMakeFiles/netent_risk.dir/failure.cpp.o.d"
  "/root/repo/src/risk/simulator.cpp" "src/risk/CMakeFiles/netent_risk.dir/simulator.cpp.o" "gcc" "src/risk/CMakeFiles/netent_risk.dir/simulator.cpp.o.d"
  "/root/repo/src/risk/verification.cpp" "src/risk/CMakeFiles/netent_risk.dir/verification.cpp.o" "gcc" "src/risk/CMakeFiles/netent_risk.dir/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netent_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
