file(REMOVE_RECURSE
  "libnetent_risk.a"
)
