# Empty compiler generated dependencies file for netent_risk.
# This may be replaced when dependencies are built.
