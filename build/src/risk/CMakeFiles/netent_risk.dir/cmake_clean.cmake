file(REMOVE_RECURSE
  "CMakeFiles/netent_risk.dir/failure.cpp.o"
  "CMakeFiles/netent_risk.dir/failure.cpp.o.d"
  "CMakeFiles/netent_risk.dir/simulator.cpp.o"
  "CMakeFiles/netent_risk.dir/simulator.cpp.o.d"
  "CMakeFiles/netent_risk.dir/verification.cpp.o"
  "CMakeFiles/netent_risk.dir/verification.cpp.o.d"
  "libnetent_risk.a"
  "libnetent_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
