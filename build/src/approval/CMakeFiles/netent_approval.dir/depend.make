# Empty dependencies file for netent_approval.
# This may be replaced when dependencies are built.
