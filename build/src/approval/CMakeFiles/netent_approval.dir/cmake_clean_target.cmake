file(REMOVE_RECURSE
  "libnetent_approval.a"
)
