file(REMOVE_RECURSE
  "CMakeFiles/netent_approval.dir/approval.cpp.o"
  "CMakeFiles/netent_approval.dir/approval.cpp.o.d"
  "CMakeFiles/netent_approval.dir/negotiation.cpp.o"
  "CMakeFiles/netent_approval.dir/negotiation.cpp.o.d"
  "libnetent_approval.a"
  "libnetent_approval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_approval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
