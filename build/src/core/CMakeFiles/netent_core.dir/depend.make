# Empty dependencies file for netent_core.
# This may be replaced when dependencies are built.
