file(REMOVE_RECURSE
  "libnetent_core.a"
)
