file(REMOVE_RECURSE
  "CMakeFiles/netent_core.dir/contract_db.cpp.o"
  "CMakeFiles/netent_core.dir/contract_db.cpp.o.d"
  "CMakeFiles/netent_core.dir/lifecycle.cpp.o"
  "CMakeFiles/netent_core.dir/lifecycle.cpp.o.d"
  "CMakeFiles/netent_core.dir/manager.cpp.o"
  "CMakeFiles/netent_core.dir/manager.cpp.o.d"
  "CMakeFiles/netent_core.dir/report.cpp.o"
  "CMakeFiles/netent_core.dir/report.cpp.o.d"
  "CMakeFiles/netent_core.dir/serialize.cpp.o"
  "CMakeFiles/netent_core.dir/serialize.cpp.o.d"
  "libnetent_core.a"
  "libnetent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
