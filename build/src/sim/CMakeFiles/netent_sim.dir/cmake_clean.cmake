file(REMOVE_RECURSE
  "CMakeFiles/netent_sim.dir/connections.cpp.o"
  "CMakeFiles/netent_sim.dir/connections.cpp.o.d"
  "CMakeFiles/netent_sim.dir/drill.cpp.o"
  "CMakeFiles/netent_sim.dir/drill.cpp.o.d"
  "CMakeFiles/netent_sim.dir/event_queue.cpp.o"
  "CMakeFiles/netent_sim.dir/event_queue.cpp.o.d"
  "libnetent_sim.a"
  "libnetent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
