file(REMOVE_RECURSE
  "libnetent_sim.a"
)
