# Empty dependencies file for netent_sim.
# This may be replaced when dependencies are built.
