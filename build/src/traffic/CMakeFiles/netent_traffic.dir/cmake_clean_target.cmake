file(REMOVE_RECURSE
  "libnetent_traffic.a"
)
