file(REMOVE_RECURSE
  "CMakeFiles/netent_traffic.dir/fleet.cpp.o"
  "CMakeFiles/netent_traffic.dir/fleet.cpp.o.d"
  "CMakeFiles/netent_traffic.dir/incident.cpp.o"
  "CMakeFiles/netent_traffic.dir/incident.cpp.o.d"
  "CMakeFiles/netent_traffic.dir/matrix.cpp.o"
  "CMakeFiles/netent_traffic.dir/matrix.cpp.o.d"
  "CMakeFiles/netent_traffic.dir/patterns.cpp.o"
  "CMakeFiles/netent_traffic.dir/patterns.cpp.o.d"
  "CMakeFiles/netent_traffic.dir/service.cpp.o"
  "CMakeFiles/netent_traffic.dir/service.cpp.o.d"
  "CMakeFiles/netent_traffic.dir/timeseries.cpp.o"
  "CMakeFiles/netent_traffic.dir/timeseries.cpp.o.d"
  "libnetent_traffic.a"
  "libnetent_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
