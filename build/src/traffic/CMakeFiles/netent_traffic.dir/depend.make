# Empty dependencies file for netent_traffic.
# This may be replaced when dependencies are built.
