
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/fleet.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/fleet.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/fleet.cpp.o.d"
  "/root/repo/src/traffic/incident.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/incident.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/incident.cpp.o.d"
  "/root/repo/src/traffic/matrix.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/matrix.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/matrix.cpp.o.d"
  "/root/repo/src/traffic/patterns.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/patterns.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/patterns.cpp.o.d"
  "/root/repo/src/traffic/service.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/service.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/service.cpp.o.d"
  "/root/repo/src/traffic/timeseries.cpp" "src/traffic/CMakeFiles/netent_traffic.dir/timeseries.cpp.o" "gcc" "src/traffic/CMakeFiles/netent_traffic.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netent_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
