file(REMOVE_RECURSE
  "libnetent_common.a"
)
