# Empty dependencies file for netent_common.
# This may be replaced when dependencies are built.
