# Empty compiler generated dependencies file for netent_common.
# This may be replaced when dependencies are built.
