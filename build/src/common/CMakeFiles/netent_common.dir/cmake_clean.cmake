file(REMOVE_RECURSE
  "CMakeFiles/netent_common.dir/matrix.cpp.o"
  "CMakeFiles/netent_common.dir/matrix.cpp.o.d"
  "CMakeFiles/netent_common.dir/stats.cpp.o"
  "CMakeFiles/netent_common.dir/stats.cpp.o.d"
  "CMakeFiles/netent_common.dir/table.cpp.o"
  "CMakeFiles/netent_common.dir/table.cpp.o.d"
  "libnetent_common.a"
  "libnetent_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
