
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enforce/agent.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/agent.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/agent.cpp.o.d"
  "/root/repo/src/enforce/bpf.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/bpf.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/bpf.cpp.o.d"
  "/root/repo/src/enforce/centralized.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/centralized.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/centralized.cpp.o.d"
  "/root/repo/src/enforce/ingress_meter.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/ingress_meter.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/ingress_meter.cpp.o.d"
  "/root/repo/src/enforce/marker.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/marker.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/marker.cpp.o.d"
  "/root/repo/src/enforce/meter.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/meter.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/meter.cpp.o.d"
  "/root/repo/src/enforce/ratestore.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/ratestore.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/ratestore.cpp.o.d"
  "/root/repo/src/enforce/switchport.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/switchport.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/switchport.cpp.o.d"
  "/root/repo/src/enforce/wfq.cpp" "src/enforce/CMakeFiles/netent_enforce.dir/wfq.cpp.o" "gcc" "src/enforce/CMakeFiles/netent_enforce.dir/wfq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
