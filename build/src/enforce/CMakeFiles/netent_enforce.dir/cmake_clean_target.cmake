file(REMOVE_RECURSE
  "libnetent_enforce.a"
)
