file(REMOVE_RECURSE
  "CMakeFiles/netent_enforce.dir/agent.cpp.o"
  "CMakeFiles/netent_enforce.dir/agent.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/bpf.cpp.o"
  "CMakeFiles/netent_enforce.dir/bpf.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/centralized.cpp.o"
  "CMakeFiles/netent_enforce.dir/centralized.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/ingress_meter.cpp.o"
  "CMakeFiles/netent_enforce.dir/ingress_meter.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/marker.cpp.o"
  "CMakeFiles/netent_enforce.dir/marker.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/meter.cpp.o"
  "CMakeFiles/netent_enforce.dir/meter.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/ratestore.cpp.o"
  "CMakeFiles/netent_enforce.dir/ratestore.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/switchport.cpp.o"
  "CMakeFiles/netent_enforce.dir/switchport.cpp.o.d"
  "CMakeFiles/netent_enforce.dir/wfq.cpp.o"
  "CMakeFiles/netent_enforce.dir/wfq.cpp.o.d"
  "libnetent_enforce.a"
  "libnetent_enforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netent_enforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
