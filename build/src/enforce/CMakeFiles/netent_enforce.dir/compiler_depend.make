# Empty compiler generated dependencies file for netent_enforce.
# This may be replaced when dependencies are built.
