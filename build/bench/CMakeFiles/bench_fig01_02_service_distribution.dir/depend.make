# Empty dependencies file for bench_fig01_02_service_distribution.
# This may be replaced when dependencies are built.
