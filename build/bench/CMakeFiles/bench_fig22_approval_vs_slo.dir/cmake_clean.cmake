file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_approval_vs_slo.dir/bench_fig22_approval_vs_slo.cpp.o"
  "CMakeFiles/bench_fig22_approval_vs_slo.dir/bench_fig22_approval_vs_slo.cpp.o.d"
  "bench_fig22_approval_vs_slo"
  "bench_fig22_approval_vs_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_approval_vs_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
