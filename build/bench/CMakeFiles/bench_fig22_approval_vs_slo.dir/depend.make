# Empty dependencies file for bench_fig22_approval_vs_slo.
# This may be replaced when dependencies are built.
