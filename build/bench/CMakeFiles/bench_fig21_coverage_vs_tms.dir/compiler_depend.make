# Empty compiler generated dependencies file for bench_fig21_coverage_vs_tms.
# This may be replaced when dependencies are built.
