file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_coverage_vs_tms.dir/bench_fig21_coverage_vs_tms.cpp.o"
  "CMakeFiles/bench_fig21_coverage_vs_tms.dir/bench_fig21_coverage_vs_tms.cpp.o.d"
  "bench_fig21_coverage_vs_tms"
  "bench_fig21_coverage_vs_tms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_coverage_vs_tms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
