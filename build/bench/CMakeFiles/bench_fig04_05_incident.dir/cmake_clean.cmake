file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_05_incident.dir/bench_fig04_05_incident.cpp.o"
  "CMakeFiles/bench_fig04_05_incident.dir/bench_fig04_05_incident.cpp.o.d"
  "bench_fig04_05_incident"
  "bench_fig04_05_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_05_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
