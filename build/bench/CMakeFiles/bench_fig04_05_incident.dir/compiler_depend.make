# Empty compiler generated dependencies file for bench_fig04_05_incident.
# This may be replaced when dependencies are built.
