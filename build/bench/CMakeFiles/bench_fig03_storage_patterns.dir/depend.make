# Empty dependencies file for bench_fig03_storage_patterns.
# This may be replaced when dependencies are built.
