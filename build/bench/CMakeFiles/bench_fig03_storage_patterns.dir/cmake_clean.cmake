file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_storage_patterns.dir/bench_fig03_storage_patterns.cpp.o"
  "CMakeFiles/bench_fig03_storage_patterns.dir/bench_fig03_storage_patterns.cpp.o.d"
  "bench_fig03_storage_patterns"
  "bench_fig03_storage_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_storage_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
