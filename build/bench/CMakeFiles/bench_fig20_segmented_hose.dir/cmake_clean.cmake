file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_segmented_hose.dir/bench_fig20_segmented_hose.cpp.o"
  "CMakeFiles/bench_fig20_segmented_hose.dir/bench_fig20_segmented_hose.cpp.o.d"
  "bench_fig20_segmented_hose"
  "bench_fig20_segmented_hose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_segmented_hose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
