# Empty dependencies file for bench_fig20_segmented_hose.
# This may be replaced when dependencies are built.
