file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_24_stateless_marking.dir/bench_fig23_24_stateless_marking.cpp.o"
  "CMakeFiles/bench_fig23_24_stateless_marking.dir/bench_fig23_24_stateless_marking.cpp.o.d"
  "bench_fig23_24_stateless_marking"
  "bench_fig23_24_stateless_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_24_stateless_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
