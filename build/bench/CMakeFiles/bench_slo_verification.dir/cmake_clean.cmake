file(REMOVE_RECURSE
  "CMakeFiles/bench_slo_verification.dir/bench_slo_verification.cpp.o"
  "CMakeFiles/bench_slo_verification.dir/bench_slo_verification.cpp.o.d"
  "bench_slo_verification"
  "bench_slo_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slo_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
