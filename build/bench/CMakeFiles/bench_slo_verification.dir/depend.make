# Empty dependencies file for bench_slo_verification.
# This may be replaced when dependencies are built.
