file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_14_drill_network.dir/bench_fig11_14_drill_network.cpp.o"
  "CMakeFiles/bench_fig11_14_drill_network.dir/bench_fig11_14_drill_network.cpp.o.d"
  "bench_fig11_14_drill_network"
  "bench_fig11_14_drill_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_14_drill_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
