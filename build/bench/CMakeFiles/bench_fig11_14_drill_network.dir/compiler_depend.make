# Empty compiler generated dependencies file for bench_fig11_14_drill_network.
# This may be replaced when dependencies are built.
