# Empty dependencies file for bench_fig15_17_drill_app.
# This may be replaced when dependencies are built.
