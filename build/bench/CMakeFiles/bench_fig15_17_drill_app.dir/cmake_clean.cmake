file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_17_drill_app.dir/bench_fig15_17_drill_app.cpp.o"
  "CMakeFiles/bench_fig15_17_drill_app.dir/bench_fig15_17_drill_app.cpp.o.d"
  "bench_fig15_17_drill_app"
  "bench_fig15_17_drill_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_17_drill_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
