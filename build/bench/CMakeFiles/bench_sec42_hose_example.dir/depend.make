# Empty dependencies file for bench_sec42_hose_example.
# This may be replaced when dependencies are built.
