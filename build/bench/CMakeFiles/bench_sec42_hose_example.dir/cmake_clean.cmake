file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_hose_example.dir/bench_sec42_hose_example.cpp.o"
  "CMakeFiles/bench_sec42_hose_example.dir/bench_sec42_hose_example.cpp.o.d"
  "bench_sec42_hose_example"
  "bench_sec42_hose_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_hose_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
