# Empty dependencies file for bench_fig18_19_forecast_accuracy.
# This may be replaced when dependencies are built.
