file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_19_forecast_accuracy.dir/bench_fig18_19_forecast_accuracy.cpp.o"
  "CMakeFiles/bench_fig18_19_forecast_accuracy.dir/bench_fig18_19_forecast_accuracy.cpp.o.d"
  "bench_fig18_19_forecast_accuracy"
  "bench_fig18_19_forecast_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_19_forecast_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
