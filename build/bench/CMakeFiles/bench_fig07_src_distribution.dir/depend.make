# Empty dependencies file for bench_fig07_src_distribution.
# This may be replaced when dependencies are built.
