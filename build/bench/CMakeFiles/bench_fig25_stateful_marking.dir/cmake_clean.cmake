file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_stateful_marking.dir/bench_fig25_stateful_marking.cpp.o"
  "CMakeFiles/bench_fig25_stateful_marking.dir/bench_fig25_stateful_marking.cpp.o.d"
  "bench_fig25_stateful_marking"
  "bench_fig25_stateful_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_stateful_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
