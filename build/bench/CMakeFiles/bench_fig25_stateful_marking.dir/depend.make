# Empty dependencies file for bench_fig25_stateful_marking.
# This may be replaced when dependencies are built.
